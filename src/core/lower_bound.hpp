// Step 3: the resource lower bound LB_r (Section 6).
//
//   LB_r = ceil( max over intervals [t1,t2] of Theta(r,t1,t2) / (t2-t1) )
//
// Evaluated exactly over the candidate points {E_i, L_i} of each partition
// block (Theorem 5 shows block-local evaluation loses nothing; the paper's
// Section 8 uses the same candidate points). Densities are compared with
// exact rational arithmetic -- no floating point.
//
// ENGINE. The maximization is decomposed into deterministic scan units --
// one unit per (partition block, chunk of candidate left endpoints) -- that
// are independent of each other: every unit scans with a fresh incumbent and
// accumulates its own peak/witness/work counters. Units are then reduced in
// unit order, so the result (bound, peak density, witness interval, and
// intervals_evaluated) is bit-identical no matter how many threads executed
// the units. num_threads therefore changes wall-clock only, never output.
//
// Pruning (opt-in) skips candidate intervals that provably cannot beat the
// prune floor: Theta(r,t1,t2) <= sum of C_i over the block, so when
// block_demand/(t2-t1) <= floor the pair (and, since the width only grows
// with t2, the rest of the row) is skipped. Because every unit scans with a
// fresh incumbent, each block first runs a PROBE pass -- the density of each
// task's own [E_i, L_i] window, itself a set of genuine candidate intervals
// -- whose peak seeds the floor of all of the block's units. Pruning never
// changes bound or peak_density; the witness is always valid (density ==
// peak, checked in debug builds) but on exact ties it may name a different
// equally-dense interval than the unpruned scan, and intervals_evaluated
// counts the probe pairs plus the surviving scan pairs. It defaults off so
// the default engine reports the paper's exact work measure. For a given
// options struct the result is still bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/ratio.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/partition.hpp"
#include "src/model/application.hpp"

namespace rtlb {

struct LowerBoundOptions {
  /// Evaluate per partition block (Theorem 5) instead of over the full range
  /// of ST_r. Both settings return the same bound; partitioning evaluates
  /// far fewer intervals (see bench_partition).
  bool use_partitioning = true;

  /// Worker threads for the scan. 1 = serial (default); 0 = one per
  /// hardware thread; n > 1 = exactly n workers. Results are bit-identical
  /// across all values (see the engine note above).
  int num_threads = 1;

  /// Skip candidate intervals whose best-possible density cannot beat the
  /// probe-seeded prune floor. Same bound and peak density, always a valid
  /// witness (an exact tie may pick a different equally-dense interval),
  /// fewer intervals evaluated on wide blocks. Off by default so
  /// intervals_evaluated stays the paper's exact pair count.
  bool enable_pruning = false;
};

struct ResourceBound {
  ResourceId resource = kInvalidResource;

  /// LB_r: minimum units of the resource any feasible system must provide.
  std::int64_t bound = 0;

  /// The maximizing density Theta/(t2-t1), exact.
  Ratio peak_density{0, 1};

  /// The witness interval achieving the peak density, and its demand. When
  /// the peak is positive the witness always satisfies
  /// witness_demand / (witness_t2 - witness_t1) == peak_density (checked in
  /// debug builds); ties across blocks resolve to the earliest unit in scan
  /// order.
  Time witness_t1 = 0;
  Time witness_t2 = 0;
  Time witness_demand = 0;

  /// Number of (t1, t2) pairs evaluated -- the work measure the partitioning
  /// of Section 5 is designed to reduce (and pruning reduces further).
  std::uint64_t intervals_evaluated = 0;
};

/// LB_r for one resource.
ResourceBound resource_lower_bound(const Application& app, const TaskWindows& windows,
                                   ResourceId r, const LowerBoundOptions& opts = {});

/// LB_r for every r in RES, in resource_set() order. With opts.num_threads
/// != 1 the (resource, block, chunk) scan units of ALL resources are fanned
/// out over one pool, so small resources do not serialize behind large ones.
std::vector<ResourceBound> all_resource_bounds(const Application& app,
                                               const TaskWindows& windows,
                                               const LowerBoundOptions& opts = {});

/// The same density maximization over an ARBITRARY task set (used by the
/// conjunctive joint bounds): partitions `tasks` into window-disjoint blocks
/// internally and returns a ResourceBound with `resource` left invalid.
ResourceBound density_bound_over(const Application& app, const TaskWindows& windows,
                                 std::vector<TaskId> tasks,
                                 const LowerBoundOptions& opts = {});

/// What one partition block contributes to a resource's bound: its peak
/// density with witness, and the number of candidate pairs evaluated. This
/// is the unit the engine reduces internally; it is exposed so the
/// memoized query path (AnalysisSession) can cache it per block.
struct BlockScanResult {
  Ratio peak{0, 1};
  Time witness_t1 = 0;
  Time witness_t2 = 0;
  Time witness_demand = 0;
  bool has_witness = false;
  std::uint64_t evaluated = 0;
};

/// Memo table for per-block scan results (Theorem 5 makes block-level reuse
/// sound: a block's contribution depends only on its tasks' windows,
/// computation times, and preemptive flags). The key is exactly that
/// geometry -- task identity is deliberately NOT part of it, so identical
/// blocks are shared across resources (e.g. a {P1}+{r1} task pair produces
/// the same block under both resources) and even across re-generated
/// applications. A lookup costs O(block size); a scan costs O(points^2 *
/// block size); every hit therefore skips the dominant cost of the query.
class BlockScanCache {
 public:
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  friend std::vector<ResourceBound> all_resource_bounds_cached(const Application&,
                                                               const TaskWindows&,
                                                               const LowerBoundOptions&,
                                                               BlockScanCache&);
  /// Flattened exact geometry: [pruning, n, then per task est, lct, comp,
  /// preemptive]. Exact-value keys (not hashes) -- a hit is a PROOF of
  /// equality, so cached results are bit-identical by construction.
  using Key = std::vector<std::int64_t>;
  struct Entry {
    BlockScanResult probe;  ///< pruning probe (empty when pruning is off)
    BlockScanResult scan;   ///< the block's scan units folded in unit order
  };
  /// Safety valve: a session that never repeats a block (e.g. an endless
  /// randomized search) must not grow the table without bound.
  static constexpr std::size_t kMaxEntries = 1 << 16;

  std::map<Key, Entry> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// all_resource_bounds with per-block memoization through `cache`.
/// Bit-identical to the uncached function for every input (the cache only
/// ever replays a scan whose inputs were value-equal); `cache` must always
/// be fed the same `opts` (enable_pruning is part of the key, so mixing is
/// safe but wastes entries). Cache misses are fanned out over the thread
/// pool exactly like the uncached path.
std::vector<ResourceBound> all_resource_bounds_cached(const Application& app,
                                                      const TaskWindows& windows,
                                                      const LowerBoundOptions& opts,
                                                      BlockScanCache& cache);

}  // namespace rtlb
