// Step 3: the resource lower bound LB_r (Section 6).
//
//   LB_r = ceil( max over intervals [t1,t2] of Theta(r,t1,t2) / (t2-t1) )
//
// Evaluated exactly over the candidate points {E_i, L_i} of each partition
// block (Theorem 5 shows block-local evaluation loses nothing; the paper's
// Section 8 uses the same candidate points). Densities are compared with
// exact rational arithmetic -- no floating point.
//
// ENGINE. The maximization is decomposed into deterministic scan units --
// one unit per (partition block, chunk of candidate left endpoints) -- that
// are independent of each other: every unit scans with a fresh incumbent and
// accumulates its own peak/witness/work counters. Units are then reduced in
// unit order, so the result (bound, peak density, witness interval, and
// intervals_evaluated) is bit-identical no matter how many threads executed
// the units. num_threads therefore changes wall-clock only, never output.
//
// Pruning (opt-in) skips candidate intervals that provably cannot beat the
// prune floor: Theta(r,t1,t2) <= sum of C_i over the block, so when
// block_demand/(t2-t1) <= floor the pair (and, since the width only grows
// with t2, the rest of the row) is skipped. Because every unit scans with a
// fresh incumbent, each block first runs a PROBE pass -- the density of each
// task's own [E_i, L_i] window, itself a set of genuine candidate intervals
// -- whose peak seeds the floor of all of the block's units. Pruning never
// changes bound or peak_density; the witness is always valid (density ==
// peak, checked in debug builds) but on exact ties it may name a different
// equally-dense interval than the unpruned scan, and intervals_evaluated
// counts the probe pairs plus the surviving scan pairs. It defaults off so
// the default engine reports the paper's exact work measure. For a given
// options struct the result is still bit-identical at any thread count.
#pragma once

#include <vector>

#include "src/common/ratio.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/partition.hpp"
#include "src/model/application.hpp"

namespace rtlb {

struct LowerBoundOptions {
  /// Evaluate per partition block (Theorem 5) instead of over the full range
  /// of ST_r. Both settings return the same bound; partitioning evaluates
  /// far fewer intervals (see bench_partition).
  bool use_partitioning = true;

  /// Worker threads for the scan. 1 = serial (default); 0 = one per
  /// hardware thread; n > 1 = exactly n workers. Results are bit-identical
  /// across all values (see the engine note above).
  int num_threads = 1;

  /// Skip candidate intervals whose best-possible density cannot beat the
  /// probe-seeded prune floor. Same bound and peak density, always a valid
  /// witness (an exact tie may pick a different equally-dense interval),
  /// fewer intervals evaluated on wide blocks. Off by default so
  /// intervals_evaluated stays the paper's exact pair count.
  bool enable_pruning = false;
};

struct ResourceBound {
  ResourceId resource = kInvalidResource;

  /// LB_r: minimum units of the resource any feasible system must provide.
  std::int64_t bound = 0;

  /// The maximizing density Theta/(t2-t1), exact.
  Ratio peak_density{0, 1};

  /// The witness interval achieving the peak density, and its demand. When
  /// the peak is positive the witness always satisfies
  /// witness_demand / (witness_t2 - witness_t1) == peak_density (checked in
  /// debug builds); ties across blocks resolve to the earliest unit in scan
  /// order.
  Time witness_t1 = 0;
  Time witness_t2 = 0;
  Time witness_demand = 0;

  /// Number of (t1, t2) pairs evaluated -- the work measure the partitioning
  /// of Section 5 is designed to reduce (and pruning reduces further).
  std::uint64_t intervals_evaluated = 0;
};

/// LB_r for one resource.
ResourceBound resource_lower_bound(const Application& app, const TaskWindows& windows,
                                   ResourceId r, const LowerBoundOptions& opts = {});

/// LB_r for every r in RES, in resource_set() order. With opts.num_threads
/// != 1 the (resource, block, chunk) scan units of ALL resources are fanned
/// out over one pool, so small resources do not serialize behind large ones.
std::vector<ResourceBound> all_resource_bounds(const Application& app,
                                               const TaskWindows& windows,
                                               const LowerBoundOptions& opts = {});

/// The same density maximization over an ARBITRARY task set (used by the
/// conjunctive joint bounds): partitions `tasks` into window-disjoint blocks
/// internally and returns a ResourceBound with `resource` left invalid.
ResourceBound density_bound_over(const Application& app, const TaskWindows& windows,
                                 std::vector<TaskId> tasks,
                                 const LowerBoundOptions& opts = {});

}  // namespace rtlb
