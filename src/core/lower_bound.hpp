// Step 3: the resource lower bound LB_r (Section 6).
//
//   LB_r = ceil( max over intervals [t1,t2] of Theta(r,t1,t2) / (t2-t1) )
//
// Evaluated exactly over the candidate points {E_i, L_i} of each partition
// block (Theorem 5 shows block-local evaluation loses nothing; the paper's
// Section 8 uses the same candidate points). Densities are compared with
// exact rational arithmetic -- no floating point.
#pragma once

#include <vector>

#include "src/common/ratio.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/partition.hpp"
#include "src/model/application.hpp"

namespace rtlb {

struct LowerBoundOptions {
  /// Evaluate per partition block (Theorem 5) instead of over the full range
  /// of ST_r. Both settings return the same bound; partitioning evaluates
  /// far fewer intervals (see bench_partition).
  bool use_partitioning = true;
};

struct ResourceBound {
  ResourceId resource = kInvalidResource;

  /// LB_r: minimum units of the resource any feasible system must provide.
  std::int64_t bound = 0;

  /// The maximizing density Theta/(t2-t1), exact.
  Ratio peak_density{0, 1};

  /// The witness interval achieving the peak density, and its demand.
  Time witness_t1 = 0;
  Time witness_t2 = 0;
  Time witness_demand = 0;

  /// Number of (t1, t2) pairs evaluated -- the work measure the partitioning
  /// of Section 5 is designed to reduce.
  std::uint64_t intervals_evaluated = 0;
};

/// LB_r for one resource.
ResourceBound resource_lower_bound(const Application& app, const TaskWindows& windows,
                                   ResourceId r, const LowerBoundOptions& opts = {});

/// LB_r for every r in RES, in resource_set() order.
std::vector<ResourceBound> all_resource_bounds(const Application& app,
                                               const TaskWindows& windows,
                                               const LowerBoundOptions& opts = {});

/// The same density maximization over an ARBITRARY task set (used by the
/// conjunctive joint bounds): partitions `tasks` into window-disjoint blocks
/// internally and returns a ResourceBound with `resource` left invalid.
ResourceBound density_bound_over(const Application& app, const TaskWindows& windows,
                                 std::vector<TaskId> tasks);

}  // namespace rtlb
