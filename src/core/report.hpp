// Machine-readable analysis reports.
//
// Serializes an AnalysisResult (plus enough of the application to interpret
// it) to JSON, for plotting pipelines and external tooling. The inverse of
// nothing -- reports are write-only snapshots; the instance itself travels
// in the text format of src/model/io.hpp.
#pragma once

#include <string>

#include "src/common/json.hpp"
#include "src/core/analysis.hpp"

namespace rtlb {

/// Full report: tasks (with windows and merge sets), partitions, bounds
/// (with witnesses and exact densities), and cost floors.
Json report_json(const Application& app, const AnalysisResult& result);

/// Convenience: report_json(...).dump(2).
std::string report_string(const Application& app, const AnalysisResult& result);

}  // namespace rtlb
