// Machine-readable analysis reports.
//
// Serializes an AnalysisResult (plus enough of the application to interpret
// it) to JSON, for plotting pipelines and external tooling. The inverse of
// nothing -- reports are write-only snapshots; the instance itself travels
// in the text format of src/model/io.hpp.
#pragma once

#include <string>

#include "src/common/json.hpp"
#include "src/core/analysis.hpp"
#include "src/core/session.hpp"

namespace rtlb {

class Trace;

/// Full report: tasks (with windows and merge sets), partitions, bounds
/// (with witnesses and exact densities), and cost floors.
Json report_json(const Application& app, const AnalysisResult& result);

/// Same report with a "timing" block -- the Trace::json() of the run that
/// produced `result` (pass the Trace the run's AnalysisOptions::trace
/// pointed at). Timing lives on the report, never on the AnalysisResult:
/// results stay bit-identical across runs, reports of instrumented runs
/// carry the wall-clock story.
Json report_json(const Application& app, const AnalysisResult& result,
                 const Trace* trace);

/// Convenience: report_json(...).dump(2).
std::string report_string(const Application& app, const AnalysisResult& result);

/// The per-stage hit/miss counters of one AnalysisSession: {"queries",
/// "query_hits", "gate_runs", "window_hits", ... , "verified"}.
Json session_stats_json(const SessionStats& stats);

/// Report of a session's CURRENT result (serves the query if needed), with
/// the reuse counters attached under "session".
Json report_json(AnalysisSession& session);

}  // namespace rtlb
