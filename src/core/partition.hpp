// Step 2: partition ST_r into independent blocks (Figure 4, Theorem 5).
//
// The tasks needing resource r are split into blocks P_r1 < P_r2 < ... such
// that every task in an earlier block completes (L_i) no later than any task
// in a later block may start (E_j). Theorem 5 proves the density maximization
// of Eq. 6.3 can then be done per block with no loss of tightness.
#pragma once

#include <vector>

#include "src/core/est_lct.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// One block of a partition, with its enclosing window [start, finish] =
/// [min E_i, max L_i] over the block's tasks.
struct PartitionBlock {
  std::vector<TaskId> tasks;
  Time start = 0;
  Time finish = 0;
};

/// The partition of ST_r for one resource.
struct ResourcePartition {
  ResourceId resource = kInvalidResource;
  std::vector<PartitionBlock> blocks;
};

/// Figure 4 applied to ST_r.
ResourcePartition partition_tasks(const Application& app, const TaskWindows& windows,
                                  ResourceId r);

/// Partitions for every r in RES.
std::vector<ResourcePartition> partition_all(const Application& app, const TaskWindows& windows);

/// Test hook: check conditions (i)-(iii) of Section 5 on a partition.
bool is_valid_partition(const Application& app, const TaskWindows& windows,
                        const ResourcePartition& partition);

}  // namespace rtlb
