#include "src/core/pipeline.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/thread_pool.hpp"
#include "src/obs/trace.hpp"
#include "src/verify/emit.hpp"

namespace rtlb {

namespace {

constexpr const char* const kStageNames[kNumStages] = {
    "lint_gate", "windows", "partitions", "bounds", "costs",
};

}  // namespace

const char* stage_name(Stage stage) {
  return kStageNames[static_cast<int>(stage)];
}

std::span<const char* const> stage_names() {
  return {kStageNames, static_cast<std::size_t>(kNumStages)};
}

bool lint_gate_refuses(const LintResult& result, LintLevel level) {
  switch (level) {
    case LintLevel::kOff:
      // The gate never refuses at kOff; structural safety is validate()'s
      // (first-error) job on that path.
      return false;
    case LintLevel::kReport: {
      // Same refusal set as validate(): structural (RTLB-E0xx) errors only.
      // Semantic errors (window collapse, uncoverable tasks) are recorded
      // but analyzed, as the historical pipeline did.
      bool refused = false;
      for (const Diagnostic& d : result.diagnostics) {
        refused |= d.severity == Severity::kError && d.code.starts_with("RTLB-E0");
      }
      return refused;
    }
    case LintLevel::kErrors:
      return result.has_errors();
    case LintLevel::kWarnings:
      return result.has_errors() || result.warnings > 0;
  }
  return false;
}

LintGateArtifact run_lint_gate(const Application& app, const DedicatedPlatform* platform,
                               LintLevel level, const SourceMap* lines) {
  LintGateArtifact gate;
  if (level == LintLevel::kOff) {
    app.validate();
    return gate;
  }
  LintResult result = lint(app, platform, lines);
  if (lint_gate_refuses(result, level)) throw LintGateError(std::move(result));
  gate.lint = std::move(result);
  return gate;
}

AnalysisResult run_pipeline(const Application& app, const AnalysisOptions& options,
                            const DedicatedPlatform* platform, StageCache& cache) {
  const bool dedicated = options.model == SystemModel::Dedicated;
  if (dedicated && platform == nullptr) {
    throw ModelError("analyze: dedicated model requires a platform");
  }

  Trace* trace = options.trace;
  ScopedSpan run_span(trace, "pipeline");

  AnalysisResult result;
  result.lb_options = options.lower_bound;

  // Stage kLintGate: batch-diagnose the instance before spending bound-scan
  // time on it. A cache may serve the whole LintResult from per-pass slices
  // (AnalysisSession keys each pass on its dirty flags); the refusal policy
  // runs on the served result exactly as on a fresh one, so refusals always
  // reflect the current model.
  {
    ScopedSpan span(trace, stage_name(Stage::kLintGate));
    if (options.lint_level == LintLevel::kOff) {
      app.validate();
      cache.record(Stage::kLintGate, false);
    } else {
      std::optional<LintResult> served = cache.serve_lint(app, platform);
      const bool from_cache = served.has_value();
      LintResult fresh = from_cache ? std::move(*served) : lint(app, platform);
      if (lint_gate_refuses(fresh, options.lint_level)) {
        throw LintGateError(std::move(fresh));
      }
      span.count("diagnostics", static_cast<std::int64_t>(fresh.diagnostics.size()));
      result.lint = std::move(fresh);
      cache.record(Stage::kLintGate, from_cache);
    }
  }

  // Stage kWindows: EST/LCT under the model's mergeability notion. A cache
  // either serves the previous windows verbatim or, after a recompute,
  // rules on value equality -- the verdict every downstream reuse keys on.
  WindowsArtifact windows;
  {
    ScopedSpan span(trace, stage_name(Stage::kWindows));
    if (const TaskWindows* cached = cache.cached_windows()) {
      windows.windows = *cached;
      windows.unchanged = true;
      cache.record(Stage::kWindows, true);
      span.count("reused", 1);
    } else {
      // Same thread knob as the bound engine; the windows are bit-identical
      // at any worker count, so the cache verdict below is unaffected.
      const int threads = options.lower_bound.num_threads;
      if (dedicated) {
        DedicatedMergeOracle oracle(*platform);
        windows.windows = compute_windows(app, oracle, threads);
      } else {
        SharedMergeOracle oracle;
        windows.windows = compute_windows(app, oracle, threads);
      }
      windows.unchanged = cache.revalidate_windows(windows.windows);
      cache.record(Stage::kWindows, false);
    }
    span.count("tasks", static_cast<std::int64_t>(app.num_tasks()));
  }
  result.windows = std::move(windows.windows);

  // Stage kPartitions: a pure function of the task sets and windows
  // (recorded even when the bound evaluation is asked to run unpartitioned,
  // so callers can always inspect them).
  PartitionsArtifact partitions;
  {
    ScopedSpan span(trace, stage_name(Stage::kPartitions));
    if (const auto* cached = cache.cached_partitions(windows.unchanged)) {
      partitions.partitions = *cached;
      cache.record(Stage::kPartitions, true);
      span.count("reused", 1);
    } else {
      partitions.partitions = partition_all(app, result.windows);
      cache.record(Stage::kPartitions, false);
    }
    std::int64_t blocks = 0;
    for (const ResourcePartition& p : partitions.partitions) {
      blocks += static_cast<std::int64_t>(p.blocks.size());
    }
    span.count("resources", static_cast<std::int64_t>(partitions.partitions.size()));
    span.count("blocks", blocks);
  }
  result.partitions = std::move(partitions.partitions);

  // Stage kBounds: LB_r for every r in RES (+ the conjunctive extension
  // rows). Stage-level reuse replays the whole vector; otherwise a
  // block-level cache (when the StageCache carries one) reuses every
  // partition block the delta left value-unchanged (Theorem 5
  // independence), and only missed blocks are scanned.
  BoundsArtifact bounds;
  {
    ScopedSpan span(trace, stage_name(Stage::kBounds));
    const std::uint64_t pool_before = ThreadPool::tasks_dispatched();
    if (const auto* cached = cache.cached_bounds(windows.unchanged)) {
      bounds.bounds = *cached;
      cache.record(Stage::kBounds, true);
      span.count("reused", 1);
    } else if (BlockScanCache* block_cache = cache.block_cache()) {
      const std::uint64_t hits = block_cache->hits();
      const std::uint64_t misses = block_cache->misses();
      bounds.bounds =
          all_resource_bounds_cached(app, result.windows, options.lower_bound, *block_cache);
      cache.record(Stage::kBounds, false);
      span.count("block_cache_hits",
                 static_cast<std::int64_t>(block_cache->hits() - hits));
      span.count("block_cache_misses",
                 static_cast<std::int64_t>(block_cache->misses() - misses));
    } else {
      bounds.bounds = all_resource_bounds(app, result.windows, options.lower_bound);
      cache.record(Stage::kBounds, false);
    }
    if (options.joint_bounds) {
      if (const auto* cached = cache.cached_joint(windows.unchanged)) {
        bounds.joint = *cached;
        cache.record_joint(true);
      } else {
        bounds.joint = joint_lower_bounds(app, result.windows);
        cache.record_joint(false);
      }
    }
    std::int64_t intervals = 0;
    for (const ResourceBound& b : bounds.bounds) {
      intervals += static_cast<std::int64_t>(b.intervals_evaluated);
    }
    span.count("intervals_evaluated", intervals);
    span.count("pool_tasks",
               static_cast<std::int64_t>(ThreadPool::tasks_dispatched() - pool_before));
  }
  result.bounds = std::move(bounds.bounds);
  result.joint = std::move(bounds.joint);
  result.rebuild_bound_index();

  // Stage kCosts: Eq. 7.1 is a trivial sum, always recomputed; the
  // dedicated ILP is only re-solved when a row it reads actually changed
  // (bounds plateau under many deltas, so synthesis/annealing loops skip
  // most solves).
  CostsArtifact costs;
  {
    ScopedSpan span(trace, stage_name(Stage::kCosts));
    costs.shared = shared_cost_bound(app, result.bounds);
    if (platform != nullptr) {
      if (const DedicatedCostBound* cached =
              cache.cached_dedicated_cost(result.bounds, result.joint)) {
        costs.dedicated = *cached;
        cache.record(Stage::kCosts, true);
        span.count("reused", 1);
      } else {
        costs.dedicated =
            options.joint_bounds
                ? dedicated_cost_bound_joint(app, *platform, result.bounds, result.joint)
                : dedicated_cost_bound(app, *platform, result.bounds);
        cache.record(Stage::kCosts, false);
        span.count("ilp_nodes", costs.dedicated->ilp_nodes);
      }
    }
    span.count("terms", static_cast<std::int64_t>(costs.shared.terms.size()));
  }
  result.shared_cost = std::move(costs.shared);
  result.dedicated_cost = std::move(costs.dedicated);

  // Certificate post-stage: restate the result as checkable facts, and
  // (under check_certificates) have the independent checker re-judge them
  // before the result is allowed out. Not a Stage -- it produces no
  // analysis values -- but it IS spanned, since emit+check can rival the
  // scan itself on small instances.
  if (options.emit_certificates || options.check_certificates) {
    ScopedSpan span(trace, "certificates");
    result.certificate = build_certificate(app, options, platform, result);
    if (options.check_certificates) {
      CheckReport report = check_certificate(*result.certificate, app, platform);
      if (!report.valid) throw CertificateCheckError(std::move(report));
      result.certificate_check = std::move(report);
      span.count("checked", 1);
    }
  }
  return result;
}

AnalysisResult run_pipeline(const Application& app, const AnalysisOptions& options,
                            const DedicatedPlatform* platform) {
  StageCache cold;
  return run_pipeline(app, options, platform, cold);
}

}  // namespace rtlb
