// Mergeability (Definitions 1 and 2).
//
// A set of tasks is "mergeable" if they could all be co-located on one
// processor (shared model) or one node (dedicated model). The EST/LCT
// algorithms in est_lct.cpp are written against this oracle so that both
// system models share one implementation.
#pragma once

#include <span>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

class MergeOracle {
 public:
  virtual ~MergeOracle() = default;

  /// True iff the tasks could all execute on the same processor/node.
  /// Singleton and empty sets are always mergeable.
  virtual bool mergeable(const Application& app, std::span<const TaskId> tasks) const = 0;
};

/// Definition 1: mergeable iff all tasks share a processor type.
class SharedMergeOracle final : public MergeOracle {
 public:
  bool mergeable(const Application& app, std::span<const TaskId> tasks) const override;
};

/// Definition 2: mergeable iff all tasks share a processor type AND some node
/// type carries that processor plus the union of their resource sets.
class DedicatedMergeOracle final : public MergeOracle {
 public:
  /// The platform must outlive the oracle.
  explicit DedicatedMergeOracle(const DedicatedPlatform& platform) : platform_(&platform) {}

  bool mergeable(const Application& app, std::span<const TaskId> tasks) const override;

 private:
  const DedicatedPlatform* platform_;
};

}  // namespace rtlb
