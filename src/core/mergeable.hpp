// Mergeability (Definitions 1 and 2).
//
// A set of tasks is "mergeable" if they could all be co-located on one
// processor (shared model) or one node (dedicated model). The EST/LCT
// algorithms in est_lct.cpp are written against this oracle so that both
// system models share one implementation.
//
// Two query shapes are offered:
//  - mergeable(): judge an arbitrary materialized set in one call.
//  - cursor(): an incremental membership test for the greedy merge loops of
//    Figures 2 and 3, whose candidate sets grow by exactly one task per
//    step. A cursor carries the set state (processor type, accumulated
//    resource union) across steps so each extension costs O(|R_t|) instead
//    of re-deriving the whole union -- the per-candidate churn the windows
//    hot path used to pay. try_add(t) answers exactly
//    mergeable(current set + {t}), by definition.
#pragma once

#include <memory>
#include <span>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

class MergeOracle {
 public:
  virtual ~MergeOracle() = default;

  /// True iff the tasks could all execute on the same processor/node.
  /// Singleton and empty sets are always mergeable.
  virtual bool mergeable(const Application& app, std::span<const TaskId> tasks) const = 0;

  /// Incremental membership test over a growing set.
  class Cursor {
   public:
    virtual ~Cursor() = default;

    /// Restart the set as {seed}.
    virtual void reset(TaskId seed) = 0;

    /// If (current set + {t}) is mergeable, commit the extension and return
    /// true; otherwise leave the set unchanged and return false.
    virtual bool try_add(TaskId t) = 0;
  };

  /// Cursor factory. The default adapter materializes the set and re-asks
  /// mergeable() on every try_add, so derived oracles keep exact semantics
  /// without implementing incremental state; both built-in oracles override
  /// it with O(1)/O(|R_t|) incremental checks. The oracle (and `app`) must
  /// outlive the cursor.
  virtual std::unique_ptr<Cursor> cursor(const Application& app) const;
};

/// Definition 1: mergeable iff all tasks share a processor type.
class SharedMergeOracle final : public MergeOracle {
 public:
  bool mergeable(const Application& app, std::span<const TaskId> tasks) const override;
  std::unique_ptr<Cursor> cursor(const Application& app) const override;
};

/// Definition 2: mergeable iff all tasks share a processor type AND some node
/// type carries that processor plus the union of their resource sets.
class DedicatedMergeOracle final : public MergeOracle {
 public:
  /// The platform must outlive the oracle.
  explicit DedicatedMergeOracle(const DedicatedPlatform& platform) : platform_(&platform) {}

  bool mergeable(const Application& app, std::span<const TaskId> tasks) const override;
  std::unique_ptr<Cursor> cursor(const Application& app) const override;

 private:
  const DedicatedPlatform* platform_;
};

}  // namespace rtlb
