// Discrete-event core: a time-ordered queue of closures.
//
// Same-timestamp events are ordered by an explicit phase (completions before
// message deliveries before starts -- matching the half-open interval
// semantics of the schedule) and then by insertion order, so simulation runs
// are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "src/common/types.hpp"

namespace rtlb {

/// Tie-break order for events at the same instant.
enum class EventPhase : int {
  Completion = 0,
  Delivery = 1,
  Start = 2,
};

class EventQueue {
 public:
  void schedule(Time at, EventPhase phase, std::function<void()> action);

  /// Pop and run the earliest event; false when the queue is empty.
  bool run_next();

  /// Drain the queue.
  void run_all();

  Time now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Entry {
    Time at;
    int phase;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace rtlb
