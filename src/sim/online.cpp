#include "src/sim/online.hpp"

#include <algorithm>
#include <map>

#include "src/sched/interval_profile.hpp"
#include "src/sim/event_queue.hpp"

namespace rtlb {

namespace {

class OnlineDispatcher {
 public:
  OnlineDispatcher(const Application& app, const Capacities& caps)
      : app_(app), caps_(caps), priority_(effective_deadlines(app)) {
    result_.schedule = Schedule(app.num_tasks());
    done_.assign(app.num_tasks(), false);
    for (ResourceId r = 0; r < app.catalog().size(); ++r) {
      if (!app.catalog().is_processor(r)) free_units_[r] = caps.of(r);
    }
    for (ResourceId r = 0; r < app.catalog().size(); ++r) {
      if (app.catalog().is_processor(r)) {
        unit_busy_[r].assign(static_cast<std::size_t>(std::max(0, caps.of(r))), false);
      }
    }
  }

  OnlineResult run() {
    // Wake up at every release; completions and arrivals re-trigger later.
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      queue_.schedule(app_.task(i).release, EventPhase::Start, [this] { dispatch(); });
    }
    queue_.run_all();
    result_.feasible = result_.missed.empty() && result_.schedule.complete();
    result_.events_processed = queue_.events_processed();
    return std::move(result_);
  }

 private:
  /// Arrival time of j's output at (task i, unit u); kTimeMax if j is not
  /// finished yet.
  Time arrival(TaskId j, TaskId i, ResourceId proc, int unit) const {
    if (!done_[j]) return kTimeMax;
    const Time end = result_.schedule.end_of(app_, j);
    const bool co_located = app_.task(j).proc == proc &&
                            result_.schedule.items[j].unit == unit;
    return co_located ? end : end + app_.message(j, i);
  }

  /// Earliest unit of i's type on which i could start right now; -1 if none.
  int startable_unit(TaskId i) const {
    const Task& t = app_.task(i);
    for (ResourceId r : t.resources) {
      auto it = free_units_.find(r);
      if (it == free_units_.end() || it->second <= 0) return -1;
    }
    const auto busy_it = unit_busy_.find(t.proc);
    if (busy_it == unit_busy_.end()) return -1;
    for (std::size_t u = 0; u < busy_it->second.size(); ++u) {
      if (busy_it->second[u]) continue;
      bool inputs_in = t.release <= queue_.now();
      for (TaskId j : app_.predecessors(i)) {
        if (arrival(j, i, t.proc, static_cast<int>(u)) > queue_.now()) {
          inputs_in = false;
          break;
        }
      }
      if (inputs_in) return static_cast<int>(u);
    }
    return -1;
  }

  void dispatch() {
    // Greedy loop: repeatedly start the most urgent startable task.
    for (;;) {
      TaskId pick = kInvalidTask;
      int pick_unit = -1;
      for (TaskId i = 0; i < app_.num_tasks(); ++i) {
        if (done_[i] || result_.schedule.items[i].placed()) continue;
        const int unit = startable_unit(i);
        if (unit < 0) continue;
        if (pick == kInvalidTask || priority_[i] < priority_[pick] ||
            (priority_[i] == priority_[pick] && i < pick)) {
          pick = i;
          pick_unit = unit;
        }
      }
      if (pick == kInvalidTask) break;
      start(pick, pick_unit);
    }
  }

  void start(TaskId i, int unit) {
    const Task& t = app_.task(i);
    result_.schedule.items[i] = {queue_.now(), unit};
    unit_busy_[t.proc][static_cast<std::size_t>(unit)] = true;
    for (ResourceId r : t.resources) --free_units_[r];

    queue_.schedule(queue_.now() + t.comp, EventPhase::Completion, [this, i, unit] {
      const Task& task = app_.task(i);
      done_[i] = true;
      unit_busy_[task.proc][static_cast<std::size_t>(unit)] = false;
      for (ResourceId r : task.resources) ++free_units_[r];
      if (queue_.now() > task.deadline) result_.missed.push_back(i);
      // Off-unit successors see the data after the message latency; wake the
      // dispatcher then (and right now for co-located ones).
      for (TaskId j : app_.successors(i)) {
        queue_.schedule(queue_.now() + app_.message(i, j), EventPhase::Delivery,
                        [this] { dispatch(); });
      }
      dispatch();
    });
  }

  const Application& app_;
  const Capacities& caps_;
  std::vector<Time> priority_;
  EventQueue queue_;
  OnlineResult result_;
  std::vector<bool> done_;
  std::map<ResourceId, int> free_units_;                // plain resources
  std::map<ResourceId, std::vector<bool>> unit_busy_;   // processor units
};

}  // namespace

OnlineResult dispatch_online_shared(const Application& app, const Capacities& caps) {
  OnlineDispatcher dispatcher(app, caps);
  return dispatcher.run();
}

}  // namespace rtlb
