// The interconnection network (ICN of Figure 1): point-to-point message
// delivery with per-message latency, built on the event queue.
//
// The paper's model charges m_ij time units for a message between tasks on
// different processors/nodes and zero for co-located tasks, with NO
// contention on the ICN itself. That contention-free assumption is made
// explicit here: a Network constructed with `links = 0` reproduces the
// paper (every message flies immediately); `links = k` models a k-link bus
// where at most k messages are in flight at once and the rest queue --
// bench_contention measures how far reality can drift from the model.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/types.hpp"
#include "src/sim/event_queue.hpp"

namespace rtlb {

class Network {
 public:
  /// links = 0: contention-free (the paper's model). links >= 1: that many
  /// concurrent transfers; further sends queue for the earliest free link.
  explicit Network(EventQueue& queue, int links = 0);

  /// Deliver after `latency` ticks of transfer (plus any queueing when the
  /// network is contended); `on_delivery` runs in the Delivery phase.
  void send(Time latency, std::function<void()> on_delivery);

  std::uint64_t messages_sent() const { return messages_; }
  Time ticks_in_flight() const { return ticks_; }
  /// Total ticks messages spent waiting for a free link (0 when links = 0).
  Time ticks_queued() const { return queued_; }

 private:
  EventQueue* queue_;
  std::vector<Time> link_free_at_;  // empty = contention-free
  std::uint64_t messages_ = 0;
  Time ticks_ = 0;
  Time queued_ = 0;
};

}  // namespace rtlb
