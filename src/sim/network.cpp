#include "src/sim/network.hpp"

#include <algorithm>

namespace rtlb {

Network::Network(EventQueue& queue, int links) : queue_(&queue) {
  RTLB_CHECK(links >= 0, "negative link count");
  link_free_at_.assign(static_cast<std::size_t>(links), 0);
}

void Network::send(Time latency, std::function<void()> on_delivery) {
  RTLB_CHECK(latency >= 0, "negative message latency");
  ++messages_;
  ticks_ += latency;

  Time start = queue_->now();
  if (!link_free_at_.empty()) {
    auto link = std::min_element(link_free_at_.begin(), link_free_at_.end());
    start = std::max(start, *link);
    queued_ += start - queue_->now();
    *link = start + latency;
  }
  queue_->schedule(start + latency, EventPhase::Delivery, std::move(on_delivery));
}

}  // namespace rtlb
