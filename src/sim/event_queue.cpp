#include "src/sim/event_queue.hpp"

namespace rtlb {

void EventQueue::schedule(Time at, EventPhase phase, std::function<void()> action) {
  RTLB_CHECK(at >= now_, "event scheduled in the past");
  queue_.push(Entry{at, static_cast<int>(phase), next_seq_++, std::move(action)});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // Move the action out before popping so it may schedule further events.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.at;
  ++processed_;
  entry.action();
  return true;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace rtlb
