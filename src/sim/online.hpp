// Online (runtime) dispatching -- the counterpart of the offline schedulers.
//
// Where list_schedule_* and anneal_schedule_* construct a timetable ahead of
// time, this module SIMULATES a runtime dispatcher: tasks become eligible as
// releases pass and input messages physically arrive, and at every event the
// dispatcher greedily places the most urgent eligible task on a free unit
// (non-preemptive, effective-deadline EDF, co-location-aware readiness: a
// message from a predecessor that ran on the same unit is available at its
// completion, otherwise at completion + m_ij).
//
// The executed timetable is returned as an ordinary Schedule, so it can be
// validated with check_shared and rendered with the Gantt tools. Online
// dispatching is inherently weaker than clairvoyant offline construction
// (it can neither insert idle time for a not-yet-arrived urgent task nor
// regret a unit choice); bench_sched quantifies the gap.
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct OnlineResult {
  /// The timetable as executed.
  Schedule schedule{0};
  /// True iff every task completed by its deadline.
  bool feasible = false;
  /// Tasks that missed their deadline (execution continues past misses).
  std::vector<TaskId> missed;
  /// Total ticks units spent idle while unstarted work existed.
  Time idle_with_backlog = 0;
  std::size_t events_processed = 0;
};

/// Simulate the online dispatcher on a shared-model system.
OnlineResult dispatch_online_shared(const Application& app, const Capacities& caps);

}  // namespace rtlb
