// Discrete-event execution of a schedule on a modeled distributed system.
//
// Where src/sched/feasibility.hpp checks a schedule statically, the
// simulator *runs* it: tasks start at their scheduled instants, acquire
// processor and resource tokens, release them and emit messages on
// completion, and successors verify that every input message has physically
// arrived. Any constraint that would be violated at runtime is recorded (the
// run continues, so one report lists every problem). The tests cross-check
// that the simulator and the static validator agree on feasibility.
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct SimOptions {
  /// 0 reproduces the paper's contention-free ICN; k >= 1 models a k-link
  /// shared bus (messages queue for a free link).
  int network_links = 0;
};

struct SimReport {
  /// True iff the run finished with no violations.
  bool ok = false;
  std::vector<std::string> violations;
  /// Chronological human-readable event log.
  std::vector<std::string> trace;
  /// Peak concurrent usage observed per resource id (processor types count
  /// busy CPUs).
  std::vector<int> peak_usage;
  /// Completion time of the last task.
  Time finish_time = 0;
  std::uint64_t messages_delivered = 0;
  std::size_t events_processed = 0;
  /// Ticks messages spent queueing for the bus (0 under the paper's model).
  Time network_queued = 0;
};

/// Execute `schedule` on a shared-model system with the given capacities.
SimReport simulate_shared(const Application& app, const Schedule& schedule,
                          const Capacities& caps, const SimOptions& options = {});

/// Execute `schedule` on the dedicated-model machine `config`.
SimReport simulate_dedicated(const Application& app, const Schedule& schedule,
                             const DedicatedPlatform& platform, const DedicatedConfig& config,
                             const SimOptions& options = {});

}  // namespace rtlb
