#include "src/sim/simulator.hpp"

#include <algorithm>
#include <map>

#include "src/sim/event_queue.hpp"
#include "src/sim/network.hpp"

namespace rtlb {

namespace {

/// Shared engine for both system models; the model-specific parts are the
/// co-location test and the per-start admission checks.
class Simulation {
 public:
  Simulation(const Application& app, const SimOptions& options)
      : app_(app), network_(queue_, options.network_links) {
    report_.peak_usage.assign(app.catalog().size(), 0);
    usage_.assign(app.catalog().size(), 0);
  }

  SimReport run(const Schedule& schedule,
                const std::function<bool(TaskId, TaskId)>& co_located,
                const std::function<void(TaskId)>& admission_checks) {
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      if (!schedule.items[i].placed()) {
        violation("task '" + app_.task(i).name + "' is not placed in the schedule");
        continue;
      }
      if (schedule.items[i].start < 0) {
        violation("task '" + app_.task(i).name + "' has a negative start time");
        continue;
      }
      queue_.schedule(schedule.items[i].start, EventPhase::Start, [=, this, &schedule,
                                                                   &co_located,
                                                                   &admission_checks] {
        start_task(i, schedule, co_located, admission_checks);
      });
    }
    queue_.run_all();
    report_.ok = report_.violations.empty();
    report_.events_processed = queue_.events_processed();
    report_.messages_delivered = network_.messages_sent();
    report_.network_queued = network_.ticks_queued();
    return std::move(report_);
  }

  void violation(std::string msg) { report_.violations.push_back(std::move(msg)); }
  void trace(std::string msg) {
    report_.trace.push_back("[" + std::to_string(queue_.now()) + "] " + std::move(msg));
  }

  /// Resource-token accounting (usage above capacity is the caller's check).
  void acquire(ResourceId r) {
    ++usage_[r];
    report_.peak_usage[r] = std::max(report_.peak_usage[r], usage_[r]);
  }
  void release(ResourceId r) { --usage_[r]; }
  int usage(ResourceId r) const { return usage_[r]; }

  EventQueue& queue() { return queue_; }
  Network& network() { return network_; }
  bool arrived(TaskId from, TaskId to) const {
    auto it = arrived_.find({from, to});
    return it != arrived_.end() && it->second;
  }
  void mark_arrived(TaskId from, TaskId to) { arrived_[{from, to}] = true; }

 private:
  void start_task(TaskId i, const Schedule& schedule,
                  const std::function<bool(TaskId, TaskId)>& co_located,
                  const std::function<void(TaskId)>& admission_checks) {
    const Task& t = app_.task(i);
    trace("start '" + t.name + "' on unit " + std::to_string(schedule.items[i].unit));
    if (queue_.now() < t.release) {
      violation("task '" + t.name + "' started before its release time");
    }
    for (TaskId j : app_.predecessors(i)) {
      if (!arrived(j, i)) {
        violation("task '" + t.name + "' started before the message from '" +
                  app_.task(j).name + "' arrived");
      }
    }
    admission_checks(i);

    acquire(t.proc);
    for (ResourceId r : t.resources) acquire(r);

    queue_.schedule(queue_.now() + t.comp, EventPhase::Completion, [=, this, &schedule,
                                                                    &co_located] {
      complete_task(i, schedule, co_located);
    });
  }

  void complete_task(TaskId i, const Schedule& schedule,
                     const std::function<bool(TaskId, TaskId)>& co_located) {
    const Task& t = app_.task(i);
    trace("complete '" + t.name + "'");
    release(t.proc);
    for (ResourceId r : t.resources) release(r);
    if (queue_.now() > t.deadline) {
      violation("task '" + t.name + "' missed its deadline");
    }
    report_.finish_time = std::max(report_.finish_time, queue_.now());

    for (TaskId j : app_.successors(i)) {
      if (!schedule.items[j].placed()) continue;
      if (co_located(i, j)) {
        // No network traffic between co-located tasks (Sec 2.2); the data is
        // available the moment i completes.
        mark_arrived(i, j);
      } else {
        network_.send(app_.message(i, j), [this, i, j] {
          mark_arrived(i, j);
          trace("message '" + app_.task(i).name + "' -> '" + app_.task(j).name + "' delivered");
        });
      }
    }
  }

  const Application& app_;
  EventQueue queue_;
  Network network_;
  SimReport report_;
  std::vector<int> usage_;
  std::map<std::pair<TaskId, TaskId>, bool> arrived_;
};

}  // namespace

SimReport simulate_shared(const Application& app, const Schedule& schedule,
                          const Capacities& caps, const SimOptions& options) {
  Simulation sim(app, options);

  // CPU instance occupancy, keyed by (type, unit).
  std::map<std::pair<ResourceId, int>, int> cpu_busy;

  auto co_located = [&](TaskId i, TaskId j) {
    return app.task(i).proc == app.task(j).proc &&
           schedule.items[i].unit == schedule.items[j].unit;
  };

  auto admission = [&](TaskId i) {
    const Task& t = app.task(i);
    const int unit = schedule.items[i].unit;
    if (unit >= caps.of(t.proc)) {
      sim.violation("task '" + t.name + "' runs on a nonexistent unit of '" +
                    app.catalog().name(t.proc) + "'");
    }
    if (++cpu_busy[{t.proc, unit}] > 1) {
      sim.violation("unit " + std::to_string(unit) + " of '" + app.catalog().name(t.proc) +
                    "' is already busy when '" + t.name + "' starts");
    }
    for (ResourceId r : t.resources) {
      if (sim.usage(r) + 1 > caps.of(r)) {
        sim.violation("resource '" + app.catalog().name(r) + "' over capacity when '" +
                      t.name + "' starts");
      }
    }
    // Free the CPU again at completion (the Completion handler releases the
    // catalog tokens; the per-unit busy flag is cleared here).
    sim.queue().schedule(sim.queue().now() + t.comp, EventPhase::Completion,
                         [&cpu_busy, t, unit] { --cpu_busy[{t.proc, unit}]; });
  };

  return sim.run(schedule, co_located, admission);
}

SimReport simulate_dedicated(const Application& app, const Schedule& schedule,
                             const DedicatedPlatform& platform,
                             const DedicatedConfig& config, const SimOptions& options) {
  Simulation sim(app, options);

  std::vector<int> node_busy(config.instance_types.size(), 0);

  auto co_located = [&](TaskId i, TaskId j) {
    return schedule.items[i].unit == schedule.items[j].unit;
  };

  auto admission = [&](TaskId i) {
    const Task& t = app.task(i);
    const int inst = schedule.items[i].unit;
    if (inst < 0 || inst >= static_cast<int>(config.instance_types.size())) {
      sim.violation("task '" + t.name + "' runs on a nonexistent node instance");
      return;
    }
    const NodeType& type = platform.node_type(config.instance_types[inst]);
    if (!type.can_host(t.proc, t.resources)) {
      sim.violation("node type '" + type.name + "' cannot host task '" + t.name + "'");
    }
    if (++node_busy[inst] > 1) {
      sim.violation("node instance " + std::to_string(inst) + " is already busy when '" +
                    t.name + "' starts");
    }
    sim.queue().schedule(sim.queue().now() + t.comp, EventPhase::Completion,
                         [&node_busy, inst] { --node_busy[inst]; });
  };

  return sim.run(schedule, co_located, admission);
}

}  // namespace rtlb
