#include "src/lint/passes.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "src/core/partition.hpp"
#include "src/lint/fixit.hpp"

namespace rtlb {

namespace {

std::string task_subject(const Application& app, TaskId i) {
  return "task '" + app.task(i).name + "' (#" + std::to_string(i) + ")";
}

std::string edge_subject(const Application& app, TaskId from, TaskId to) {
  return "edge " + app.task(from).name + " -> " + app.task(to).name;
}

std::string catalog_subject(const Application& app, ResourceId r) {
  return std::string(app.catalog().is_processor(r) ? "processor type '" : "resource '") +
         app.catalog().name(r) + "'";
}

/// Attach a whole-line task repair when the declaration is line-anchored.
/// `t` is the repaired copy; the edit reproduces serialize_instance()'s
/// spelling so the fixed file still round-trips.
void attach_task_fix(Diagnostic& d, const LintContext& ctx, const Task& t) {
  if (d.line <= 0) return;
  d.fixes.push_back({d.line, FixEdit::Kind::kReplaceLine,
                     render_task_directive(ctx.app, t)});
}

}  // namespace

void structural_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;
  const ResourceCatalog& cat = app.catalog();

  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    auto emit = [&](const char* code, std::string message = "") {
      Diagnostic d = sink.make(code, task_subject(app, i), std::move(message));
      d.task = i;
      d.line = ctx.task_line(i);
      sink.emit(std::move(d));
    };

    if (t.comp <= 0) emit("RTLB-E001", "computation time must be positive");
    if (t.proc >= cat.size()) {
      emit("RTLB-E002", "invalid processor type id");
    } else if (!cat.is_processor(t.proc)) {
      emit("RTLB-E003", "phi_i '" + cat.name(t.proc) + "' is not a processor type");
    }
    for (ResourceId r : t.resources) {
      if (r >= cat.size()) {
        emit("RTLB-E004", "invalid resource id");
      } else if (cat.is_processor(r)) {
        emit("RTLB-E005", "R_i contains processor type '" + cat.name(r) + "'");
      }
    }
    if (t.deadline < t.release || t.deadline - t.release < t.comp) {
      const char* code = t.deadline < t.release ? "RTLB-E008" : "RTLB-E009";
      std::string message =
          t.deadline < t.release
              ? "deadline " + std::to_string(t.deadline) + " precedes release " +
                    std::to_string(t.release)
              : "window [rel, D] shorter than computation time";
      Diagnostic d = sink.make(code, task_subject(app, i), std::move(message));
      d.task = i;
      d.line = ctx.task_line(i);
      // Repair: the smallest window leaving POSITIVE slack (deficit + 1) --
      // fixing to the exact boundary would trade the error for a fresh
      // zero-slack W102/W103 and break the strictly-fewer-findings contract.
      if (t.comp > 0 && t.release <= kTimeMax - t.comp - 1) {
        Task repaired = t;
        repaired.deadline = t.release + t.comp + 1;
        attach_task_fix(d, ctx, repaired);
      }
      sink.emit(std::move(d));
    }
  }

  // Duplicate non-empty names (empty names are legal for programmatic
  // throwaway models and are not a join key).
  std::map<std::string, TaskId> first_seen;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const std::string& name = app.task(i).name;
    if (name.empty()) continue;
    auto [it, inserted] = first_seen.try_emplace(name, i);
    if (!inserted) {
      Diagnostic d = sink.make("RTLB-E006", task_subject(app, i),
                               "duplicate task name (first declared as #" +
                                   std::to_string(it->second) + ")");
      d.task = i;
      d.line = ctx.task_line(i);
      sink.emit(std::move(d));
    }
  }

  if (!app.dag().is_acyclic()) {
    sink.emit(sink.make("RTLB-E007", "", "precedence graph has a cycle"));
  }
}

void temporal_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  if (ctx.windows == nullptr) return;
  const Application& app = ctx.app;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Time slack = ctx.windows->slack(app, i);
    if (slack < 0) {
      Diagnostic d = sink.make(
          "RTLB-E101", task_subject(app, i),
          "derived window [E=" + std::to_string(ctx.windows->est[i]) +
              ", L=" + std::to_string(ctx.windows->lct[i]) + "] cannot contain C=" +
              std::to_string(app.task(i).comp) + " (slack " + std::to_string(slack) + ")");
      d.task = i;
      d.line = ctx.task_line(i);
      // Repair only when raising THIS task's deadline provably raises L_i:
      // the task is a sink and its own deadline is the binding constraint.
      // (Interior tasks inherit L_i from downstream -- widening their
      // declared deadline changes nothing; that chain is N422's finding.)
      const Task& t = app.task(i);
      if (app.successors(i).empty() && ctx.windows->lct[i] == t.deadline &&
          t.deadline <= kTimeMax + slack - 1) {
        Task repaired = t;
        repaired.deadline = t.deadline - slack + 1;  // deficit + 1: positive slack
        attach_task_fix(d, ctx, repaired);
      }
      sink.emit(std::move(d));
    } else if (slack == 0 && !app.task(i).preemptive) {
      Diagnostic d = sink.make(
          "RTLB-W102", task_subject(app, i),
          "non-preemptive task has zero derived slack; its start time is fixed at E=" +
              std::to_string(ctx.windows->est[i]));
      d.task = i;
      d.line = ctx.task_line(i);
      sink.emit(std::move(d));
    } else if (slack == 0) {
      // Preemptive sibling of W102: with L - E == C the task saturates its
      // window, so Psi contributes the full C over [E, L] and preemption
      // offers no real flexibility.
      Diagnostic d = sink.make(
          "RTLB-W103", task_subject(app, i),
          "preemptive task has a tight window [E=" + std::to_string(ctx.windows->est[i]) +
              ", L=" + std::to_string(ctx.windows->lct[i]) + "] exactly equal to C=" +
              std::to_string(app.task(i).comp));
      d.task = i;
      d.line = ctx.task_line(i);
      sink.emit(std::move(d));
    }
  }
}

void platform_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;
  const ResourceCatalog& cat = app.catalog();

  // W201: catalog entries no task references. ST_r is empty for such an r,
  // so its partition has no blocks and LB_r would be 0.
  std::vector<bool> used(cat.size(), false);
  for (const Task& t : app.tasks()) {
    used[t.proc] = true;
    for (ResourceId r : t.resources) used[r] = true;
  }
  for (ResourceId r = 0; r < cat.size(); ++r) {
    if (used[r]) continue;
    Diagnostic d = sink.make("RTLB-W201", catalog_subject(app, r),
                             "declared but used by no task (ST_r is empty)");
    d.resource = r;
    d.line = ctx.resource_line(r);
    // Deleting the declaration is only safe when no platform node line still
    // references the name -- the repaired file must re-parse.
    bool node_referenced = false;
    if (ctx.platform != nullptr) {
      for (const NodeType& node : ctx.platform->node_types()) {
        node_referenced |= node.proc == r;
        for (const auto& [res, units] : node.resources) node_referenced |= res == r;
      }
    }
    if (d.line > 0 && !node_referenced) {
      d.fixes.push_back({d.line, FixEdit::Kind::kDeleteLine, ""});
    }
    sink.emit(std::move(d));
  }

  if (ctx.platform == nullptr) return;

  // E202: Eq. 7.2's covering constraint "some node hosts task i" has an
  // empty left-hand side -- the dedicated ILP is infeasible as written.
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    if (!ctx.platform->hosts_for(t).empty()) continue;
    std::string req = "processor '" + cat.name(t.proc) + "'";
    for (ResourceId r : t.resources) req += " + '" + cat.name(r) + "'";
    Diagnostic d = sink.make("RTLB-E202", task_subject(app, i),
                             "no node type in the menu provides " + req);
    d.task = i;
    d.line = ctx.task_line(i);
    sink.emit(std::move(d));
  }

  // W203: menu entries that host nothing only enlarge the ILP.
  for (std::size_t n = 0; n < ctx.platform->num_node_types(); ++n) {
    const NodeType& node = ctx.platform->node_type(n);
    bool hosts_any = false;
    for (const Task& t : app.tasks()) {
      if (node.can_host(t.proc, t.resources)) {
        hosts_any = true;
        break;
      }
    }
    if (!hosts_any) {
      Diagnostic d = sink.make("RTLB-W203", "node type '" + node.name + "'",
                               "can host no task of this application");
      d.line = ctx.node_line(n);
      if (d.line > 0) {
        d.fixes.push_back({d.line, FixEdit::Kind::kDeleteLine, ""});
      }
      sink.emit(std::move(d));
    }
  }
}

void numeric_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;

  // E301: Theta sums per resource must stay representable; a wrapped demand
  // would silently corrupt LB_r.
  for (ResourceId r : app.resource_set()) {
    Time sum = 0;
    bool overflow = false;
    for (const Task& t : app.tasks()) {
      if (t.uses(r) && __builtin_add_overflow(sum, t.comp, &sum)) {
        overflow = true;
        break;
      }
    }
    if (overflow) {
      Diagnostic d = sink.make("RTLB-E301", catalog_subject(app, r),
                               "total computation demand overflows the Time range");
      d.resource = r;
      d.line = ctx.resource_line(r);
      sink.emit(std::move(d));
    }
  }

  // W302: timings beyond kTimeMax may saturate window arithmetic.
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    const bool out_of_range = t.comp > kTimeMax || t.release > kTimeMax ||
                              t.release < kTimeMin || t.deadline > kTimeMax ||
                              t.deadline < kTimeMin;
    if (!out_of_range) continue;
    Diagnostic d = sink.make("RTLB-W302", task_subject(app, i),
                             "comp/rel/deadline magnitude beyond kTimeMax (" +
                                 std::to_string(kTimeMax) + ")");
    d.task = i;
    d.line = ctx.task_line(i);
    // Repair: clamp every timing into [kTimeMin, kTimeMax]. Only offered
    // when the clamped window still holds the clamped computation time --
    // otherwise the fix would trade a warning for a structural error.
    Task repaired = t;
    repaired.comp = std::min(t.comp, kTimeMax);
    repaired.release = std::clamp(t.release, kTimeMin, kTimeMax);
    repaired.deadline = std::clamp(t.deadline, kTimeMin, kTimeMax);
    if (repaired.deadline >= repaired.release &&
        repaired.deadline - repaired.release >= repaired.comp) {
      attach_task_fix(d, ctx, repaired);
    }
    sink.emit(std::move(d));
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      if (app.message(i, j) <= kTimeMax) continue;
      Diagnostic d = sink.make("RTLB-W302", edge_subject(app, i, j),
                               "message size beyond kTimeMax (" + std::to_string(kTimeMax) +
                                   ")");
      d.line = ctx.edge_line(i, j);
      if (d.line > 0) {
        d.fixes.push_back({d.line, FixEdit::Kind::kReplaceLine,
                           render_edge_directive(app, i, j, kTimeMax)});
      }
      sink.emit(std::move(d));
    }
  }
}

void hygiene_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;

  // W401: isolated vertices in an application that otherwise has precedence
  // structure (an app with no edges at all is a plain independent task set).
  if (app.dag().num_edges() > 0) {
    for (TaskId i = 0; i < app.num_tasks(); ++i) {
      if (app.dag().in_degree(i) > 0 || app.dag().out_degree(i) > 0) continue;
      Diagnostic d = sink.make("RTLB-W401", task_subject(app, i));
      d.task = i;
      d.line = ctx.task_line(i);
      sink.emit(std::move(d));
    }
  }

  // N402: zero-size messages.
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      if (app.message(i, j) != 0) continue;
      Diagnostic d = sink.make("RTLB-N402", edge_subject(app, i, j));
      d.line = ctx.edge_line(i, j);
      sink.emit(std::move(d));
    }
  }

  // N403: resources whose ST_r never splits -- the Theorem-5 speedup does
  // not apply, so the full quadratic interval scan runs for them.
  if (ctx.windows != nullptr) {
    for (const ResourcePartition& p : partition_all(app, *ctx.windows)) {
      if (p.blocks.size() != 1 || p.blocks[0].tasks.size() < 2) continue;
      Diagnostic d =
          sink.make("RTLB-N403", catalog_subject(app, p.resource),
                    "all " + std::to_string(p.blocks[0].tasks.size()) +
                        " tasks of ST_r fall into one partition block");
      d.resource = p.resource;
      sink.emit(std::move(d));
    }
  }
}

}  // namespace rtlb
