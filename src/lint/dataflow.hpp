// DAG dataflow lint pass (layer 2 of the semantic lint engine): path-level
// diagnostics over the precedence graph, where the interesting real-time
// findings live (the window machinery of Figs. 2-3 is itself a dataflow
// computation, so the linter reasons the same way).
//
//   RTLB-N421  transitively redundant zero-message edge: the ordering is
//              already implied by the remaining edges (Dag::transitive_
//              reduction -- unique for DAGs) and deleting it is free.
//   RTLB-N422  a task whose derived window is fully inherited from a
//              dominating constraint chain: neither its release nor its
//              deadline binds. The chain is named via core/explain's binding
//              walkers, with the critical-chain slack profile (minimum slack
//              along the chain and the task attaining it).
//   RTLB-N423  dead latency constraint: an edge message that can never be
//              the binding term of either adjacent window -- on the EST side
//              its largest possible contribution is dominated by the other
//              constraints' floor, on the LCT side its smallest possible
//              send-deadline is dominated by the ceiling (proved from the
//              absint intervals, so it holds for every merge decision).
//
// N421 needs only the graph; N422/N423 need ctx.windows and ctx.absint and
// are skipped when the driver could not compute them.
#pragma once

#include "src/lint/linter.hpp"

namespace rtlb {

void dataflow_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

}  // namespace rtlb
