#include "src/lint/recurrent.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace rtlb {

namespace {

// -- Directive renderers (must reproduce the src/model/io.cpp grammar). ----

std::string render_transaction_directive(const Transaction& tr) {
  std::string out;
  if (tr.kind == ReleaseKind::kSporadic) {
    out = "sporadic " + tr.name + " mininter " + std::to_string(tr.period);
    if (tr.offset != 0) out += " offset " + std::to_string(tr.offset);
    if (tr.horizon != 0) out += " horizon " + std::to_string(tr.horizon);
  } else {
    out = "transaction " + tr.name + " period " + std::to_string(tr.period);
    if (tr.offset != 0) out += " offset " + std::to_string(tr.offset);
  }
  return out;
}

std::string render_ttask_directive(const ResourceCatalog& catalog, const Transaction& tr,
                                   const TemplateTask& t) {
  std::string out = "ttask " + tr.name + " " + t.name + " comp " + std::to_string(t.comp);
  if (t.offset != 0) out += " offset " + std::to_string(t.offset);
  if (t.relative_deadline != 0) out += " deadline " + std::to_string(t.relative_deadline);
  out += " proc " + catalog.name(t.proc);
  if (!t.resources.empty()) {
    out += " res ";
    for (std::size_t i = 0; i < t.resources.size(); ++i) {
      if (i > 0) out += ",";
      out += catalog.name(t.resources[i]);
    }
  }
  if (t.preemptive) out += " preemptive";
  return out;
}

// -- Helpers. --------------------------------------------------------------

std::string transaction_subject(const Transaction& tr) {
  return std::string(tr.kind == ReleaseKind::kSporadic ? "sporadic" : "transaction") +
         " '" + tr.name + "'";
}

std::string task_subject(const Transaction& tr, const TemplateTask& t) {
  return "template task '" + tr.name + "." + t.name + "'";
}

/// The effective relative deadline: an explicit one, else "end of slot".
Time effective_deadline(const Transaction& tr, const TemplateTask& t) {
  return t.relative_deadline > 0 ? t.relative_deadline : tr.period;
}

/// One whole-line fix per source line: the fixit applier treats two edits to
/// one line as a conflict and refuses the batch, so when several checks hit
/// the same `transaction`/`ttask` line only the FIRST attaches a repair.
class FixBudget {
 public:
  /// True (and consumes the line's budget) when `line` is fixable and no fix
  /// was attached to it yet.
  bool claim(int line) {
    if (line <= 0) return false;
    return used_.insert(line).second;
  }

 private:
  std::set<int> used_;
};

void attach_fix(Diagnostic& d, FixBudget& budget, std::string text) {
  if (!budget.claim(d.line)) return;
  d.fixes.push_back({d.line, FixEdit::Kind::kReplaceLine, std::move(text)});
}

/// E501's repair: the smallest period that contains every declared window --
/// at least 1, past the transaction offset, and wide enough for every task's
/// offset+comp and explicit relative deadline.
Time repaired_period(const Transaction& tr) {
  Time p = 1;
  p = std::max(p, tr.offset + 1);
  for (const TemplateTask& t : tr.tasks) {
    if (t.comp > 0 && t.offset >= 0) p = std::max(p, t.offset + t.comp);
    p = std::max(p, t.relative_deadline);
  }
  return p;
}

/// Kahn's algorithm over the template edges; self-contained so the lint
/// layer does not grow a graph/ dependency for a dozen-vertex template.
bool template_is_acyclic(const Transaction& tr) {
  const std::size_t n = tr.tasks.size();
  std::vector<int> indegree(n, 0);
  std::vector<std::vector<std::size_t>> out(n);
  for (const TemplateEdge& e : tr.edges) {
    out[e.from].push_back(e.to);
    ++indegree[e.to];
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::size_t v = ready.back();
    ready.pop_back();
    ++seen;
    for (std::size_t w : out[v]) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  return seen == n;
}

/// E507 catch-all: everything that must hold before any other check can be
/// stated (ids resolvable, edges in range, names unique, scalars sane).
/// Returns true when the transaction is structurally sound.
bool check_template_structure(const ResourceCatalog& catalog, const Transaction& tr,
                              DiagnosticSink& sink) {
  bool ok = true;
  auto broken = [&](std::string subject, std::string message, int line) {
    Diagnostic d = sink.make("RTLB-E507", std::move(subject), std::move(message));
    d.line = line;
    sink.emit(std::move(d));
    ok = false;
  };

  if (tr.tasks.empty()) {
    broken(transaction_subject(tr), "transaction declares no tasks", tr.line);
  }
  std::set<std::string> names;
  for (const TemplateTask& t : tr.tasks) {
    if (!names.insert(t.name).second) {
      broken(task_subject(tr, t), "duplicate template task name", t.line);
    }
    if (t.proc == kInvalidResource || static_cast<std::size_t>(t.proc) >= catalog.size()) {
      broken(task_subject(tr, t), "processor-type id is not in the catalog", t.line);
    } else if (!catalog.is_processor(t.proc)) {
      broken(task_subject(tr, t), "proc names a plain resource, not a processor type",
             t.line);
    }
    for (ResourceId r : t.resources) {
      if (r == kInvalidResource || static_cast<std::size_t>(r) >= catalog.size()) {
        broken(task_subject(tr, t), "resource id in res is not in the catalog", t.line);
      } else if (catalog.is_processor(r)) {
        broken(task_subject(tr, t), "res contains a processor type", t.line);
      }
    }
    if (t.relative_deadline < 0) {
      broken(task_subject(tr, t), "negative relative deadline", t.line);
    }
  }
  for (const TemplateEdge& e : tr.edges) {
    if (e.from >= tr.tasks.size() || e.to >= tr.tasks.size() || e.from == e.to) {
      broken(transaction_subject(tr), "template edge endpoint out of range", e.line);
      continue;
    }
    if (e.msg < 0) {
      broken("template edge " + tr.tasks[e.from].name + " -> " + tr.tasks[e.to].name,
             "negative message size", e.line);
    }
  }
  return ok;
}

/// Release-law checks: E501 (period / minimum inter-arrival), E502 on the
/// transaction offset, E505 (sporadic horizon). Returns false when the
/// period is unusable (window checks would be meaningless).
bool check_release_law(const Transaction& tr, bool any_periodic_sibling,
                       DiagnosticSink& sink, FixBudget& fixes) {
  if (tr.period <= 0) {
    Diagnostic d = sink.make(
        "RTLB-E501", transaction_subject(tr),
        std::string(tr.kind == ReleaseKind::kSporadic
                        ? "minimum inter-arrival must be positive"
                        : "period must be positive"));
    d.line = tr.line;
    Transaction repaired = tr;
    repaired.period = repaired_period(tr);
    if (repaired.offset >= 0) {
      attach_fix(d, fixes, render_transaction_directive(repaired));
    }
    sink.emit(std::move(d));
    return false;
  }

  if (tr.offset < 0 || tr.offset >= tr.period) {
    Diagnostic d = sink.make(
        "RTLB-E502", transaction_subject(tr),
        "release offset lies outside [0, " +
            std::string(tr.kind == ReleaseKind::kSporadic ? "mininter" : "period") + ")");
    d.line = tr.line;
    Transaction repaired = tr;
    repaired.offset = 0;
    attach_fix(d, fixes, render_transaction_directive(repaired));
    sink.emit(std::move(d));
  } else if (tr.kind == ReleaseKind::kSporadic) {
    // A sporadic transaction needs a horizon to bound its densest release
    // sequence: its own, or the periodic siblings' hyperperiod.
    const bool own_horizon = tr.horizon > tr.offset;
    if (!own_horizon && !(tr.horizon == 0 && any_periodic_sibling)) {
      Diagnostic d = sink.make(
          "RTLB-E505", transaction_subject(tr),
          tr.horizon == 0
              ? "no horizon declared and no periodic transaction to borrow a "
                "hyperperiod from"
              : "horizon does not reach past the release offset");
      d.line = tr.line;
      Transaction repaired = tr;
      repaired.horizon = 4 * tr.period;
      attach_fix(d, fixes, render_transaction_directive(repaired));
      sink.emit(std::move(d));
    }
  }
  return true;
}

/// Per-task window checks: E001 (comp), E502 on the task offset, E503
/// (deadline beyond the period), E504 (window cannot hold the task).
void check_template_task(const ResourceCatalog& catalog, const Transaction& tr,
                         const TemplateTask& t, DiagnosticSink& sink, FixBudget& fixes) {
  if (t.comp <= 0) {
    Diagnostic d = sink.make("RTLB-E001", task_subject(tr, t));
    d.line = t.line;
    TemplateTask repaired = t;
    repaired.comp = 1;
    if (t.offset >= 0 && t.offset < tr.period && t.relative_deadline <= tr.period &&
        effective_deadline(tr, t) - t.offset >= 1) {
      attach_fix(d, fixes, render_ttask_directive(catalog, tr, repaired));
    }
    sink.emit(std::move(d));
    return;  // window checks are meaningless without a computation time
  }

  if (t.offset < 0 || t.offset >= tr.period) {
    Diagnostic d = sink.make("RTLB-E502", task_subject(tr, t),
                             "release offset lies outside [0, period)");
    d.line = t.line;
    TemplateTask repaired = t;
    repaired.offset = 0;
    // Only repair when the task actually fits at offset 0 (and the deadline
    // is constrained, so the fix cannot unmask an E503 next round).
    if (effective_deadline(tr, t) >= t.comp && t.relative_deadline <= tr.period) {
      attach_fix(d, fixes, render_ttask_directive(catalog, tr, repaired));
    }
    sink.emit(std::move(d));
    return;  // the window below would double-report the bad offset
  }

  if (t.relative_deadline > tr.period) {
    Diagnostic d = sink.make(
        "RTLB-E503", task_subject(tr, t),
        "relative deadline reaches beyond the period; successive activations would "
        "overlap their own chain");
    d.line = t.line;
    TemplateTask repaired = t;
    repaired.relative_deadline = 0;  // "end of slot"
    if (tr.period - t.offset >= t.comp) {
      attach_fix(d, fixes, render_ttask_directive(catalog, tr, repaired));
    }
    sink.emit(std::move(d));
  }

  if (effective_deadline(tr, t) - t.offset < t.comp) {
    Diagnostic d = sink.make("RTLB-E504", task_subject(tr, t),
                             "template window [offset, deadline] is shorter than the "
                             "computation time");
    d.line = t.line;
    if (t.relative_deadline > 0 && tr.period - t.offset >= t.comp) {
      TemplateTask repaired = t;
      repaired.relative_deadline = 0;
      attach_fix(d, fixes, render_ttask_directive(catalog, tr, repaired));
    }
    sink.emit(std::move(d));
  }
}

}  // namespace

void recurrent_lint_pass(const ResourceCatalog& catalog, const Workload& workload,
                         const DedicatedPlatform* platform, DiagnosticSink& sink) {
  (void)platform;  // reserved: capacity-aware utilization once node counts exist

  FixBudget fixes;
  bool any_periodic = false;
  for (const Transaction& tr : workload.transactions) {
    if (tr.kind == ReleaseKind::kPeriodic && tr.period > 0) any_periodic = true;
  }

  std::set<std::string> names;
  for (const Transaction& tr : workload.transactions) {
    if (!names.insert(tr.name).second) {
      Diagnostic d =
          sink.make("RTLB-E507", transaction_subject(tr), "duplicate transaction name");
      d.line = tr.line;
      sink.emit(std::move(d));
      continue;
    }
    if (!check_template_structure(catalog, tr, sink)) continue;

    if (!template_is_acyclic(tr)) {
      Diagnostic d = sink.make("RTLB-E506", transaction_subject(tr),
                               "template precedence edges form a cycle");
      d.line = tr.line;
      sink.emit(std::move(d));
    }

    if (!check_release_law(tr, any_periodic, sink, fixes)) continue;

    for (const TemplateTask& t : tr.tasks) {
      check_template_task(catalog, tr, t, sink, fixes);
    }
  }

  // Workload-wide: a representable hyperperiod (E508) ...
  const Hyperperiod h = checked_hyperperiod(workload.transactions);
  if (h.overflow) {
    Diagnostic d = sink.make(
        "RTLB-E508", "",
        "hyperperiod of the transaction periods overflows the Time range");
    d.hint = "make the periods harmonic (each dividing the next) or rescale the time "
             "unit; the lcm of the declared periods exceeds kTimeMax";
    sink.emit(std::move(d));
  }

  // ... and steady-state utilization per processor type (W510). The densest
  // sporadic release sequence demands comp every mininter ticks, so sporadic
  // transactions contribute exactly like periodic ones.
  for (ResourceId p = 0; static_cast<std::size_t>(p) < catalog.size(); ++p) {
    if (!catalog.is_processor(p)) continue;
    long double util = 0.0L;
    for (const Transaction& tr : workload.transactions) {
      if (tr.period <= 0) continue;  // already an E501
      for (const TemplateTask& t : tr.tasks) {
        if (t.proc != p || t.comp <= 0) continue;
        util += static_cast<long double>(t.comp) / static_cast<long double>(tr.period);
      }
    }
    if (util > 1.0L) {
      Diagnostic d = sink.make(
          "RTLB-W510", "processor type '" + catalog.name(p) + "'",
          "steady-state utilization exceeds one processor unit");
      d.resource = p;
      sink.emit(std::move(d));
    }
  }
}

LintResult lint_workload(const ResourceCatalog& catalog, const Workload& workload,
                         const DedicatedPlatform* platform, const LintOptions& options) {
  LintResult result;
  DiagnosticSink sink(result, options);
  recurrent_lint_pass(catalog, workload, platform, sink);
  return result;
}

LintResult merge_lint_results(LintResult front, LintResult back) {
  front.diagnostics.insert(front.diagnostics.end(),
                           std::make_move_iterator(back.diagnostics.begin()),
                           std::make_move_iterator(back.diagnostics.end()));
  front.errors += back.errors;
  front.warnings += back.warnings;
  front.notes += back.notes;
  front.truncated = front.truncated || back.truncated;
  return front;
}

}  // namespace rtlb
