// The lint driver: an ordered registry of read-only passes over an
// Application (plus, optionally, a DedicatedPlatform and the SourceMap of the
// file it was parsed from). Unlike Application::validate() -- which throws on
// the FIRST structural violation -- the linter batches every finding into a
// LintResult so users can fix a whole instance in one round trip, and so the
// analysis pipeline can refuse hopeless instances before spending bound-scan
// time on them (AnalysisOptions::lint_level).
//
// Passes never mutate the model. Passes that interpret the model (EST/LCT
// windows, partitions, platform coverage) only run when the structural pass
// found no errors; a structurally broken instance reports only its
// structural findings.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/json.hpp"
#include "src/core/est_lct.hpp"
#include "src/lint/diagnostic.hpp"
#include "src/model/application.hpp"
#include "src/model/io.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

struct AbsIntResult;  // src/lint/absint.hpp

struct LintOptions {
  /// Stop recording further findings once this many ERRORS were emitted
  /// (warnings/notes do not count). 0 = unlimited. The result is marked
  /// truncated so "no further findings" is distinguishable from "clean".
  int max_errors = 0;

  /// Promote warnings to errors (the classic -Werror). Notes are unaffected.
  bool werror = false;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // in pass order, stable
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  bool truncated = false;  // max_errors cap was hit

  bool clean() const { return diagnostics.empty(); }
  bool has_errors() const { return errors > 0; }
};

/// Everything a pass may look at. `lines` and `platform` may be null;
/// `absint` is filled by the driver once the structural pass found no errors
/// (the interval interpretation needs an acyclic model with valid ids), and
/// `windows` only when the interpretation additionally PROVED the window
/// computation stays within the safe Time range -- the absint verdict
/// replaced the old coarse whole-graph sum guard as the gate.
struct LintContext {
  const Application& app;
  const DedicatedPlatform* platform = nullptr;
  const SourceMap* lines = nullptr;
  const TaskWindows* windows = nullptr;
  const AbsIntResult* absint = nullptr;

  /// Line of task i's declaration; 0 when unknown.
  int task_line(TaskId i) const { return lines ? lines->task_line(i) : 0; }
  int edge_line(TaskId from, TaskId to) const {
    return lines ? lines->edge_line(from, to) : 0;
  }
  int resource_line(ResourceId r) const {
    return lines ? lines->resource_line(r) : 0;
  }
  int node_line(std::size_t n) const { return lines ? lines->node_line(n) : 0; }
};

/// Collects diagnostics for one run, applying werror promotion and the
/// max_errors cap. Passes call emit(); everything else is bookkeeping.
/// `registry` is the code table make() resolves against -- the lint registry
/// by default; the audit subsystem passes its own (src/audit/registry.hpp)
/// so the two code spaces stay disjoint.
class DiagnosticSink {
 public:
  DiagnosticSink(LintResult& result, const LintOptions& options,
                 std::span<const DiagInfo> registry = all_diag_info())
      : result_(&result), options_(options), registry_(registry) {}

  /// Record `d` (severity defaulted from the registry for d.code; a pass may
  /// pre-set a different severity only by filling d.severity AFTER setting
  /// code via make()). Returns false once the error cap is reached.
  bool emit(Diagnostic d);

  /// Convenience: registry-backed constructor. `message` defaults to the
  /// registry summary when empty.
  Diagnostic make(const char* code, std::string subject, std::string message = "") const;

  bool capped() const { return capped_; }

 private:
  LintResult* result_;
  LintOptions options_;
  std::span<const DiagInfo> registry_;
  bool capped_ = false;
};

/// One registered pass.
struct LintPass {
  std::string name;
  /// True for passes that interpret the model and therefore only run on
  /// structurally clean instances.
  bool needs_valid_model = true;
  std::function<void(const LintContext&, DiagnosticSink&)> run;
};

/// Per-pass diagnostic slices of one lint run, the currency of incremental
/// session lint: AnalysisSession stores the last run's slices and keys each
/// pass's validity on its dirty flags, so a delta mutation re-runs only the
/// passes whose inputs changed and reuses the rest verbatim. Only populated
/// by run_with_reuse() under default LintOptions (werror rewrites severities
/// and max_errors truncates across pass boundaries, so slices recorded under
/// one option set are not valid under another).
struct LintPassSlices {
  bool valid = false;
  std::vector<std::vector<Diagnostic>> by_pass;  ///< indexed like Linter::passes()
};

/// The driver. Default-constructed with the standard pass order: structural,
/// temporal, platform-coverage, numeric-safety, absint, dataflow, hygiene.
class Linter {
 public:
  Linter();

  /// Append a custom pass after the standard ones.
  void register_pass(LintPass pass);

  const std::vector<LintPass>& passes() const { return passes_; }

  LintResult run(const Application& app, const DedicatedPlatform* platform = nullptr,
                 const SourceMap* lines = nullptr, const LintOptions& options = {}) const;

  /// Incremental run: serve pass k's diagnostics from `slices` when the
  /// caller's `dirty` mask clears it (dirty must have one entry per pass;
  /// any other size means "all dirty"), recompute the rest, and commit the
  /// fresh slices back. The assembled result is bit-identical to run() by
  /// construction -- slices are only reusable while the model state each
  /// pass reads is unchanged, which is the CALLER's obligation (the session
  /// derives it from its dirty flags). `pass_hits`/`pass_misses` (may be
  /// null) count one hit or miss per pass per call.
  LintResult run_with_reuse(const Application& app, const DedicatedPlatform* platform,
                            const SourceMap* lines, LintPassSlices& slices,
                            const std::vector<bool>& dirty,
                            std::uint64_t* pass_hits = nullptr,
                            std::uint64_t* pass_misses = nullptr,
                            const LintOptions& options = {}) const;

 private:
  std::vector<LintPass> passes_;
};

/// The shared default-constructed Linter behind lint() and the session's
/// incremental reuse (both must agree on the pass registry).
const Linter& default_linter();

/// One-shot convenience over default_linter().
LintResult lint(const Application& app, const DedicatedPlatform* platform = nullptr,
                const SourceMap* lines = nullptr, const LintOptions& options = {});

/// Thrown by analyze() when the pre-flight gate refuses an instance; carries
/// the full batch of diagnostics so callers can print them all.
class LintGateError : public ModelError {
 public:
  explicit LintGateError(LintResult result);
  const LintResult& result() const { return result_; }

 private:
  LintResult result_;
};

/// Render a whole result in compiler style, one finding per line (plus hint
/// lines), followed by a "N error(s), M warning(s), K note(s)" summary.
std::string format_lint_text(const LintResult& result, const std::string& filename = "");

/// JSON view used by both the analysis report and rtlb_lint --format=json:
/// {"errors", "warnings", "notes", "truncated", "diagnostics": [{"code",
/// "severity", "subject", "message", "hint", "line"}]}. Diagnostics carrying
/// machine-applicable repairs additionally get "fixes": [{"line", "kind",
/// "text"}].
Json lint_json(const LintResult& result);

}  // namespace rtlb
