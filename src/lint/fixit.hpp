// Machine-applicable fix-its (layer 3 of the semantic lint engine).
//
// Diagnostics have always carried fix-it PROSE (DiagInfo::fixit); passes now
// additionally attach FixEdit records (src/lint/diagnostic.hpp) anchored to
// SourceMap lines, and apply_fixes() turns a lint run into a repaired source
// text. The contract, enforced by tests over the bad-instance corpus:
//
//  * ATOMIC: edits are collected per line first and the output text is
//    produced in one pass -- a conflict cannot leave a half-patched file.
//  * CONFLICT-SAFE: identical edits to one line coalesce; disagreeing edits
//    to one line are all skipped and counted, never merged.
//  * IDEMPOTENT & MONOTONE: fix -> re-parse -> re-lint yields strictly fewer
//    findings whenever anything was applied, and a second application is
//    byte-stable. Deadline repairs therefore widen to positive slack
//    (deficit + 1), not to the exact boundary -- an exact repair would trade
//    an error for a fresh zero-slack warning.
//
// The rtlb format is line-oriented, so edits are whole-directive line
// replacements or deletions; render_task_directive() reproduces the
// serialize_instance() spelling of one task line for replacement edits.
#pragma once

#include <string>

#include "src/lint/linter.hpp"
#include "src/model/application.hpp"
#include "src/model/task.hpp"

namespace rtlb {

struct FixApplication {
  std::string text;          ///< source after every applicable edit
  int applied = 0;           ///< lines actually edited
  int skipped_conflict = 0;  ///< lines with disagreeing edits, left untouched
  std::vector<std::string> log;  ///< one human-readable entry per decision

  bool changed() const { return applied > 0; }
};

/// Apply every FixEdit carried by `result` to `source`. Pure: the input text
/// is never modified, and the returned text equals it when nothing applied.
FixApplication apply_fixes(const std::string& source, const LintResult& result);

/// Minimal unified-diff rendering of before -> after for --fix-dry-run
/// (per-line hunks; both texts must be newline-delimited rtlb sources).
std::string fix_diff(const std::string& before, const std::string& after,
                     const std::string& filename);

/// The serialize_instance() spelling of one task directive, with `t` taking
/// the place of the task's stored attributes (passes pass a repaired copy).
/// Resource/processor names resolve through app.catalog().
std::string render_task_directive(const Application& app, const Task& t);

/// Same for one edge directive with a replacement message size.
std::string render_edge_directive(const Application& app, TaskId from, TaskId to,
                                  Time msg);

}  // namespace rtlb
