// Interval abstract interpretation over the pipeline's arithmetic (layer 1
// of the semantic lint engine).
//
// The analysis engine evaluates the paper's recurrences in 64-bit ticks:
// EST/LCT chain sums along DAG paths (Figs. 2-3), per-resource demand sums
// (Theta), and the Eq. 7.1/7.2 cost accumulations. abstract_interpret()
// re-evaluates the same expressions in an interval domain over I128: every
// derived quantity is bracketed by a [lo, hi] pair that is sound for EVERY
// merge decision an oracle could take, so the linter can either prove --
// before analyze() runs -- that no intermediate value can leave the safe
// Time range, or pinpoint a concrete chain that must overflow. This replaces
// the coarse whole-graph sum guard the lint driver used to gate window
// computation on, and upgrades the after-the-fact E301/W302 spot checks from
// "this input looks big" to a per-path proof.
//
// Domain. For task i with predecessors P (edge messages m_ji, computation
// times C_j > 0 on a structurally clean model):
//
//   est_lo[i] = max(rel_i, max_{j in P} (est_lo[j] + C_j + min(0, m_ji)))
//   est_hi[i] = max(rel_i, max_{j in P} est_hi[j]
//                          + sum_{j in P} C_j + max(0, max_{j in P} m_ji))
//
// The lo recurrence is a plain chain sum (every feasible value of E_i is at
// least each predecessor's completion, message paid or not), so it names a
// concrete witness path. The hi recurrence dominates both the unmerged term
// (est_j + C_j + m_ji) and every merged packing: ect() of any merged subset
// is at most the subset's worst EST plus the sum of its computation times,
// which the full-predecessor sum bounds from above. The LCT side mirrors
// this through the deadline. Intervals widen (never narrow), all I128
// arithmetic saturates at kAbsIntSaturation, and the verdict is three-valued:
//
//   kProvedSafe    every endpoint within [-kSafeTime, kSafeTime] -- the
//                  engine's int64 arithmetic is provably exact
//   kMayOverflow   some endpoint escapes the safe envelope but no value is
//                  forced out of int64 (RTLB-W311)
//   kMustOverflow  some est_lo/lct_hi is outside int64 for every merge
//                  decision: the engine WILL wrap (RTLB-E310, with the
//                  witness chain)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/lint/linter.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

/// One I128 interval, lo <= hi.
struct AbsInterval {
  __int128 lo = 0;
  __int128 hi = 0;
};

enum class AbsVerdict {
  kProvedSafe = 0,
  kMayOverflow,
  kMustOverflow,
};

/// Every intermediate the engine computes stays exact in int64 as long as
/// all window endpoints are within this envelope: one more chain step adds
/// at most a computation time plus a message (2 * kTimeMax = INT64_MAX/2 -
/// 1 of headroom above it).
inline constexpr __int128 kSafeTime = static_cast<__int128>(INT64_MAX / 2);

/// Saturation bound for the interval arithmetic itself (I128 products of
/// catalog costs and demand sums can exceed even I128).
inline constexpr __int128 kAbsIntSaturation = (static_cast<__int128>(1) << 120);

/// Saturating I128 helpers, clamped to [-kAbsIntSaturation, kAbsIntSaturation].
__int128 abs_sat_add(__int128 a, __int128 b);
__int128 abs_sat_mul(__int128 a, __int128 b);

/// Decimal rendering (std::to_string has no __int128 overload).
std::string i128_str(__int128 v);

struct AbsIntResult {
  std::vector<AbsInterval> est;  ///< E_i envelope over all merge decisions
  std::vector<AbsInterval> lct;  ///< L_i envelope over all merge decisions

  /// Exact per-resource Theta ceiling (sum of computation times of ST_r),
  /// indexed like Application::resource_set().
  std::vector<ResourceId> resources;
  std::vector<__int128> demand;

  /// Eq. 7.1 accumulation envelope: sum_r |cost_r| * demand_r.
  __int128 shared_cost_hi = 0;
  /// Eq. 7.2 accumulation envelope: sum_n |cost_n| * num_tasks (each node
  /// count in any useful ILP solution is bounded by the task count). 0
  /// without a platform.
  __int128 dedicated_cost_hi = 0;

  AbsVerdict verdict = AbsVerdict::kProvedSafe;
  bool cost_may_overflow = false;  ///< some cost envelope exceeds int64

  /// Pinpointing: the first (topological) task whose envelope violates the
  /// verdict's threshold, which side, the offending value, and -- for
  /// kMustOverflow -- the witness chain of the lo-side sum, source-first.
  TaskId worst_task = kInvalidTask;
  bool worst_is_est = true;
  __int128 worst_value = 0;
  std::vector<TaskId> worst_chain;

  bool windows_safe() const { return verdict == AbsVerdict::kProvedSafe; }
};

/// Run the interpretation. Requires a structurally clean model (valid ids,
/// acyclic DAG, positive computation times) -- the lint driver only calls it
/// after the structural pass found no errors.
AbsIntResult abstract_interpret(const Application& app,
                                const DedicatedPlatform* platform = nullptr);

/// RTLB-E310/W311/W312: report the interpretation's verdict (ctx.absint;
/// the pass is silent when the driver did not attach one).
void absint_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

}  // namespace rtlb
