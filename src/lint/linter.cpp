#include "src/lint/linter.hpp"

#include <sstream>

#include "src/core/mergeable.hpp"
#include "src/lint/passes.hpp"

namespace rtlb {

bool DiagnosticSink::emit(Diagnostic d) {
  if (capped_) {
    result_->truncated = true;
    return false;
  }
  if (options_.werror && d.severity == Severity::kWarning) d.severity = Severity::kError;
  switch (d.severity) {
    case Severity::kError: ++result_->errors; break;
    case Severity::kWarning: ++result_->warnings; break;
    case Severity::kNote: ++result_->notes; break;
  }
  result_->diagnostics.push_back(std::move(d));
  if (options_.max_errors > 0 && result_->errors >= options_.max_errors) capped_ = true;
  return true;
}

Diagnostic DiagnosticSink::make(const char* code, std::string subject,
                                std::string message) const {
  const DiagInfo* info = diag_info(code);
  RTLB_CHECK(info != nullptr, "unregistered diagnostic code");
  Diagnostic d;
  d.code = info->code;
  d.severity = info->severity;
  d.subject = std::move(subject);
  d.message = message.empty() ? info->summary : std::move(message);
  d.hint = info->fixit;
  return d;
}

namespace {

/// Conservative pre-check that the EST/LCT recurrences cannot overflow:
/// every derived time is bounded in magnitude by the largest input timing
/// plus the sum of all computation times and message sizes, so as long as
/// all inputs are within [kTimeMin, kTimeMax] and that sum stays under
/// 2 * kTimeMax, every intermediate fits comfortably in Time.
bool windows_computable(const Application& app) {
  Time total = 0;
  for (const Task& t : app.tasks()) {
    if (t.comp > kTimeMax || t.release > kTimeMax || t.release < kTimeMin ||
        t.deadline > kTimeMax || t.deadline < kTimeMin) {
      return false;
    }
    if (__builtin_add_overflow(total, t.comp, &total)) return false;
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      const Time msg = app.message(i, j);
      if (msg > kTimeMax) return false;
      if (__builtin_add_overflow(total, msg, &total)) return false;
    }
  }
  return total <= 2 * kTimeMax;
}

}  // namespace

Linter::Linter() {
  passes_.push_back({"structural", /*needs_valid_model=*/false, structural_lint_pass});
  passes_.push_back({"temporal", true, temporal_lint_pass});
  passes_.push_back({"platform-coverage", true, platform_lint_pass});
  passes_.push_back({"numeric-safety", true, numeric_lint_pass});
  passes_.push_back({"hygiene", true, hygiene_lint_pass});
}

void Linter::register_pass(LintPass pass) { passes_.push_back(std::move(pass)); }

LintResult Linter::run(const Application& app, const DedicatedPlatform* platform,
                       const SourceMap* lines, const LintOptions& options) const {
  LintResult result;
  DiagnosticSink sink(result, options);
  LintContext ctx{app, platform, lines, nullptr};

  // Structural passes always run; model-interpreting passes only on a
  // structurally clean instance (EST/LCT needs valid ids and acyclicity).
  for (const LintPass& pass : passes_) {
    if (pass.needs_valid_model) continue;
    pass.run(ctx, sink);
  }
  if (result.has_errors()) return result;

  TaskWindows windows;
  if (windows_computable(app)) {
    if (platform != nullptr) {
      DedicatedMergeOracle oracle(*platform);
      windows = compute_windows(app, oracle);
    } else {
      SharedMergeOracle oracle;
      windows = compute_windows(app, oracle);
    }
    ctx.windows = &windows;
  }

  for (const LintPass& pass : passes_) {
    if (!pass.needs_valid_model) continue;
    if (sink.capped()) break;
    pass.run(ctx, sink);
  }
  return result;
}

LintResult lint(const Application& app, const DedicatedPlatform* platform,
                const SourceMap* lines, const LintOptions& options) {
  static const Linter linter;
  return linter.run(app, platform, lines, options);
}

namespace {

std::string gate_summary(const LintResult& result) {
  std::ostringstream out;
  out << "pre-flight lint refused the instance: " << result.errors << " error(s), "
      << result.warnings << " warning(s)";
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    out << "; first: ";
    if (!d.subject.empty()) out << d.subject << ": ";
    out << d.message << " [" << d.code << "]";
    break;
  }
  return out.str();
}

}  // namespace

LintGateError::LintGateError(LintResult result)
    : ModelError(gate_summary(result)), result_(std::move(result)) {}

std::string format_lint_text(const LintResult& result, const std::string& filename) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << format_diagnostic(d, filename) << "\n";
  }
  out << result.errors << " error(s), " << result.warnings << " warning(s), "
      << result.notes << " note(s)";
  if (result.truncated) out << " (truncated by --max-errors)";
  out << "\n";
  return out.str();
}

Json lint_json(const LintResult& result) {
  Json root = Json::object();
  root.set("errors", result.errors)
      .set("warnings", result.warnings)
      .set("notes", result.notes)
      .set("truncated", result.truncated);
  Json diags = Json::array();
  for (const Diagnostic& d : result.diagnostics) {
    Json entry = Json::object();
    entry.set("code", d.code)
        .set("severity", severity_name(d.severity))
        .set("subject", d.subject)
        .set("message", d.message)
        .set("hint", d.hint)
        .set("line", d.line);
    diags.push(std::move(entry));
  }
  root.set("diagnostics", std::move(diags));
  return root;
}

}  // namespace rtlb
