#include "src/lint/linter.hpp"

#include <optional>
#include <sstream>

#include "src/core/mergeable.hpp"
#include "src/lint/absint.hpp"
#include "src/lint/dataflow.hpp"
#include "src/lint/passes.hpp"

namespace rtlb {

bool DiagnosticSink::emit(Diagnostic d) {
  if (capped_) {
    result_->truncated = true;
    return false;
  }
  if (options_.werror && d.severity == Severity::kWarning) d.severity = Severity::kError;
  switch (d.severity) {
    case Severity::kError: ++result_->errors; break;
    case Severity::kWarning: ++result_->warnings; break;
    case Severity::kNote: ++result_->notes; break;
  }
  result_->diagnostics.push_back(std::move(d));
  if (options_.max_errors > 0 && result_->errors >= options_.max_errors) capped_ = true;
  return true;
}

Diagnostic DiagnosticSink::make(const char* code, std::string subject,
                                std::string message) const {
  const DiagInfo* info = nullptr;
  for (const DiagInfo& entry : registry_) {
    if (std::string_view(entry.code) == code) {
      info = &entry;
      break;
    }
  }
  RTLB_CHECK(info != nullptr, "unregistered diagnostic code");
  Diagnostic d;
  d.code = info->code;
  d.severity = info->severity;
  d.subject = std::move(subject);
  d.message = message.empty() ? info->summary : std::move(message);
  d.hint = info->fixit;
  return d;
}

Linter::Linter() {
  passes_.push_back({"structural", /*needs_valid_model=*/false, structural_lint_pass});
  passes_.push_back({"temporal", true, temporal_lint_pass});
  passes_.push_back({"platform-coverage", true, platform_lint_pass});
  passes_.push_back({"numeric-safety", true, numeric_lint_pass});
  passes_.push_back({"absint", true, absint_lint_pass});
  passes_.push_back({"dataflow", true, dataflow_lint_pass});
  passes_.push_back({"hygiene", true, hygiene_lint_pass});
}

void Linter::register_pass(LintPass pass) { passes_.push_back(std::move(pass)); }

LintResult Linter::run(const Application& app, const DedicatedPlatform* platform,
                       const SourceMap* lines, const LintOptions& options) const {
  LintPassSlices scratch;  // empty dirty mask = recompute everything
  return run_with_reuse(app, platform, lines, scratch, {}, nullptr, nullptr, options);
}

LintResult Linter::run_with_reuse(const Application& app, const DedicatedPlatform* platform,
                                  const SourceMap* lines, LintPassSlices& slices,
                                  const std::vector<bool>& dirty,
                                  std::uint64_t* pass_hits, std::uint64_t* pass_misses,
                                  const LintOptions& options) const {
  // Slices recorded under non-default options are not reusable (werror
  // rewrites severities in place, max_errors truncates across passes), so
  // such runs neither serve nor commit slices.
  const bool reusable = options.max_errors == 0 && !options.werror;
  const bool have_mask = dirty.size() == passes_.size();
  auto pass_clean = [&](std::size_t k) {
    return reusable && have_mask && slices.valid &&
           slices.by_pass.size() == passes_.size() && !dirty[k];
  };

  LintResult result;
  DiagnosticSink sink(result, options);
  LintContext ctx{app, platform, lines, nullptr, nullptr};
  std::vector<std::vector<Diagnostic>> fresh(passes_.size());

  auto run_pass = [&](std::size_t k) {
    if (pass_clean(k)) {
      for (const Diagnostic& d : slices.by_pass[k]) sink.emit(d);
      fresh[k] = slices.by_pass[k];
      if (pass_hits != nullptr) ++*pass_hits;
      return;
    }
    const std::size_t start = result.diagnostics.size();
    passes_[k].run(ctx, sink);
    fresh[k].assign(result.diagnostics.begin() +
                        static_cast<std::ptrdiff_t>(start),
                    result.diagnostics.end());
    if (pass_misses != nullptr) ++*pass_misses;
  };

  // Structural passes always run; model-interpreting passes only on a
  // structurally clean instance (EST/LCT needs valid ids and acyclicity).
  for (std::size_t k = 0; k < passes_.size(); ++k) {
    if (!passes_[k].needs_valid_model) run_pass(k);
  }

  bool skipped_model_passes = false;
  if (result.has_errors()) {
    // Model passes are skipped wholesale (counted as misses -- nothing was
    // served). This run learned NOTHING about them, so their previous
    // slices -- recorded the last time they actually ran -- must stay
    // committed untouched: the caller's dirty flags keep governing whether
    // they may be served later, and a pass whose inputs changed re-runs
    // either way. Overwriting them with this run's empty vectors was a real
    // fleet-caught bug: a session query refused by the structural gate
    // wiped the platform-coverage slice, and the next (clean) query served
    // the empty slice -- its warnings silently vanished from the report.
    skipped_model_passes = true;
    for (std::size_t k = 0; k < passes_.size(); ++k) {
      if (!passes_[k].needs_valid_model) continue;
      if (pass_misses != nullptr) ++*pass_misses;
      if (reusable && slices.valid && slices.by_pass.size() == passes_.size()) {
        fresh[k] = slices.by_pass[k];
      }
    }
  } else {
    bool recompute_any = false;
    for (std::size_t k = 0; k < passes_.size(); ++k) {
      recompute_any |= passes_[k].needs_valid_model && !pass_clean(k);
    }
    // The interpretation gates the window computation: windows are only
    // materialized when every intermediate is provably within the safe
    // range, so the linter itself can never trip the overflow it reports.
    std::optional<AbsIntResult> absint;
    TaskWindows windows;
    if (recompute_any) {
      absint = abstract_interpret(app, platform);
      ctx.absint = &*absint;
      if (absint->windows_safe()) {
        if (platform != nullptr) {
          DedicatedMergeOracle oracle(*platform);
          windows = compute_windows(app, oracle);
        } else {
          SharedMergeOracle oracle;
          windows = compute_windows(app, oracle);
        }
        ctx.windows = &windows;
      }
    }
    for (std::size_t k = 0; k < passes_.size(); ++k) {
      if (!passes_[k].needs_valid_model) continue;
      if (sink.capped()) break;
      run_pass(k);
    }
  }

  if (reusable) {
    // With no prior slices to preserve, a skipped-model-pass run must not
    // commit: marking its empty vectors valid is exactly the wiped-slice
    // bug above.
    const bool had_prior = slices.valid && slices.by_pass.size() == passes_.size();
    if (skipped_model_passes && !had_prior) {
      slices.valid = false;
    } else {
      slices.by_pass = std::move(fresh);
      slices.valid = true;
    }
  }
  return result;
}

const Linter& default_linter() {
  static const Linter linter;
  return linter;
}

LintResult lint(const Application& app, const DedicatedPlatform* platform,
                const SourceMap* lines, const LintOptions& options) {
  return default_linter().run(app, platform, lines, options);
}

namespace {

std::string gate_summary(const LintResult& result) {
  std::ostringstream out;
  out << "pre-flight lint refused the instance: " << result.errors << " error(s), "
      << result.warnings << " warning(s)";
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    out << "; first: ";
    if (!d.subject.empty()) out << d.subject << ": ";
    out << d.message << " [" << d.code << "]";
    break;
  }
  return out.str();
}

}  // namespace

LintGateError::LintGateError(LintResult result)
    : ModelError(gate_summary(result)), result_(std::move(result)) {}

std::string format_lint_text(const LintResult& result, const std::string& filename) {
  std::ostringstream out;
  for (const Diagnostic& d : result.diagnostics) {
    out << format_diagnostic(d, filename) << "\n";
  }
  out << result.errors << " error(s), " << result.warnings << " warning(s), "
      << result.notes << " note(s)";
  if (result.truncated) out << " (truncated by --max-errors)";
  out << "\n";
  return out.str();
}

Json lint_json(const LintResult& result) {
  Json root = Json::object();
  root.set("errors", result.errors)
      .set("warnings", result.warnings)
      .set("notes", result.notes)
      .set("truncated", result.truncated);
  Json diags = Json::array();
  for (const Diagnostic& d : result.diagnostics) {
    Json entry = Json::object();
    entry.set("code", d.code)
        .set("severity", severity_name(d.severity))
        .set("subject", d.subject)
        .set("message", d.message)
        .set("hint", d.hint)
        .set("line", d.line);
    if (!d.fixes.empty()) {
      Json fixes = Json::array();
      for (const FixEdit& e : d.fixes) {
        Json fix = Json::object();
        fix.set("line", e.line)
            .set("kind", e.kind == FixEdit::Kind::kDeleteLine ? "delete" : "replace")
            .set("text", e.text);
        fixes.push(std::move(fix));
      }
      entry.set("fixes", std::move(fixes));
    }
    diags.push(std::move(entry));
  }
  root.set("diagnostics", std::move(diags));
  return root;
}

}  // namespace rtlb
