// The standard lint passes, individually callable (Application::validate()
// runs structural_lint_pass alone; the Linter runs all of them in order).
// Each pass appends to the sink and never mutates the model.
#pragma once

#include "src/lint/linter.hpp"

namespace rtlb {

/// RTLB-E001..E009: per-task scalar checks (computation time, catalog ids,
/// release/deadline window), duplicate non-empty task names, precedence
/// cycles. Subsumes every check of the historical Application::validate();
/// the diagnostic wording is the single source of truth for both paths.
void structural_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

/// RTLB-E101/W102: EST/LCT-derived window collapse (Theorems 1-2 certify
/// that a negative slack is infeasible on ANY system) and zero-slack
/// non-preemptive tasks. Requires ctx.windows.
void temporal_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

/// RTLB-W201/E202/W203: catalog resources no task references; dedicated
/// model -- tasks no node type can host (Eq. 7.2 infeasible) and node types
/// that host nothing.
void platform_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

/// RTLB-E301/W302: per-resource demand sums that overflow Time, and task
/// timings beyond kTimeMax.
void numeric_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

/// RTLB-W401/N402/N403: isolated tasks (in a DAG that has edges), zero-size
/// messages, single-block partitions. Requires ctx.windows for N403.
void hygiene_lint_pass(const LintContext& ctx, DiagnosticSink& sink);

}  // namespace rtlb
