#include "src/lint/baseline.hpp"

#include <fstream>
#include <sstream>

#include "src/common/types.hpp"

namespace rtlb {

std::set<std::string> read_baseline_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("cannot open baseline '" + path + "'");
  std::set<std::string> keys;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

void write_baseline_file(const std::string& path, const std::set<std::string>& keys,
                         const std::string& header) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ModelError("cannot write baseline '" + path + "'");
  if (!header.empty()) {
    std::istringstream lines(header);
    for (std::string line; std::getline(lines, line);) out << "# " << line << "\n";
  }
  for (const std::string& key : keys) out << key << "\n";
  if (!out) throw ModelError("cannot write baseline '" + path + "'");
}

}  // namespace rtlb
