#include "src/lint/absint.hpp"

#include <algorithm>
#include <cstdlib>

namespace rtlb {

__int128 abs_sat_add(__int128 a, __int128 b) {
  const __int128 sum = a + b;  // |a|,|b| <= 2^120, so the raw sum cannot wrap
  return std::clamp(sum, -kAbsIntSaturation, kAbsIntSaturation);
}

__int128 abs_sat_mul(__int128 a, __int128 b) {
  if (a == 0 || b == 0) return 0;
  const bool negative = (a < 0) != (b < 0);
  // Magnitudes; inputs are already clamped, so the division test is exact.
  const __int128 ma = a < 0 ? -a : a;
  const __int128 mb = b < 0 ? -b : b;
  if (ma > kAbsIntSaturation / mb) {
    return negative ? -kAbsIntSaturation : kAbsIntSaturation;
  }
  return negative ? -(ma * mb) : ma * mb;
}

std::string i128_str(__int128 v) {
  if (v == 0) return "0";
  const bool negative = v < 0;
  // Peel digits from the magnitude; -min is representable for our clamped
  // range (|v| <= 2^120).
  unsigned __int128 m = negative ? static_cast<unsigned __int128>(-v)
                                 : static_cast<unsigned __int128>(v);
  std::string digits;
  while (m != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(m % 10)));
    m /= 10;
  }
  if (negative) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

namespace {

constexpr __int128 kInt64Max = static_cast<__int128>(INT64_MAX);
constexpr __int128 kInt64Min = static_cast<__int128>(INT64_MIN);

std::string task_subject(const Application& app, TaskId i) {
  return "task '" + app.task(i).name + "' (#" + std::to_string(i) + ")";
}

std::string chain_names(const Application& app, const std::vector<TaskId>& chain) {
  std::string out;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (k > 0) out += " -> ";
    out += app.task(chain[k]).name.empty() ? "#" + std::to_string(chain[k])
                                           : app.task(chain[k]).name;
  }
  return out;
}

}  // namespace

AbsIntResult abstract_interpret(const Application& app, const DedicatedPlatform* platform) {
  const std::size_t n = app.num_tasks();
  AbsIntResult r;
  r.est.resize(n);
  r.lct.resize(n);

  const auto order = app.dag().topological_order();
  RTLB_CHECK(order.has_value(), "abstract_interpret requires an acyclic DAG");

  // Witness parents of the chain-sum (lo-side EST, hi-side LCT) recurrences;
  // these are the sums the engine is FORCED to realize, so a violation along
  // them is a proof of overflow, not a possibility.
  std::vector<TaskId> est_lo_parent(n, kInvalidTask);
  std::vector<TaskId> lct_hi_parent(n, kInvalidTask);

  // EST sweep, topological order: predecessors are final when read.
  for (TaskId i : *order) {
    const Task& t = app.task(i);
    AbsInterval v{static_cast<__int128>(t.release), static_cast<__int128>(t.release)};
    __int128 comp_sum = 0;
    __int128 max_pred_hi = -kAbsIntSaturation;
    __int128 max_msg = 0;
    for (TaskId j : app.predecessors(i)) {
      const __int128 cj = static_cast<__int128>(app.task(j).comp);
      const __int128 m = static_cast<__int128>(app.message(j, i));
      const __int128 lo_contrib =
          abs_sat_add(abs_sat_add(r.est[j].lo, cj), m < 0 ? m : 0);
      if (lo_contrib > v.lo) {
        v.lo = lo_contrib;
        est_lo_parent[i] = j;
      }
      comp_sum = abs_sat_add(comp_sum, cj);
      max_pred_hi = std::max(max_pred_hi, r.est[j].hi);
      max_msg = std::max(max_msg, m);
    }
    if (!app.predecessors(i).empty()) {
      v.hi = std::max(v.hi, abs_sat_add(abs_sat_add(max_pred_hi, comp_sum), max_msg));
    }
    r.est[i] = v;
  }

  // LCT sweep, reverse topological order: successors final when read.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const TaskId i = *it;
    const Task& t = app.task(i);
    AbsInterval v{static_cast<__int128>(t.deadline), static_cast<__int128>(t.deadline)};
    __int128 comp_sum = 0;
    __int128 min_succ_lo = kAbsIntSaturation;
    __int128 max_msg = 0;
    for (TaskId j : app.successors(i)) {
      const __int128 cj = static_cast<__int128>(app.task(j).comp);
      const __int128 m = static_cast<__int128>(app.message(i, j));
      const __int128 hi_contrib =
          abs_sat_add(abs_sat_add(r.lct[j].hi, -cj), m < 0 ? -m : 0);
      if (hi_contrib < v.hi) {
        v.hi = hi_contrib;
        lct_hi_parent[i] = j;
      }
      comp_sum = abs_sat_add(comp_sum, cj);
      min_succ_lo = std::min(min_succ_lo, r.lct[j].lo);
      max_msg = std::max(max_msg, m < 0 ? 0 : m);
    }
    if (!app.successors(i).empty()) {
      v.lo = std::min(v.lo, abs_sat_add(abs_sat_add(min_succ_lo, -comp_sum), -max_msg));
    }
    r.lct[i] = v;
  }

  // Verdict: the FIRST topological violation pins the report, must-overflow
  // outranking may-overflow. Only the chain-sum sides (est_lo, lct_hi) can
  // prove "must": they hold for every merge decision.
  for (TaskId i : *order) {
    if (r.est[i].lo > kInt64Max &&
        (r.verdict != AbsVerdict::kMustOverflow)) {
      r.verdict = AbsVerdict::kMustOverflow;
      r.worst_task = i;
      r.worst_is_est = true;
      r.worst_value = r.est[i].lo;
      break;
    }
    if (r.lct[i].hi < kInt64Min && r.verdict != AbsVerdict::kMustOverflow) {
      r.verdict = AbsVerdict::kMustOverflow;
      r.worst_task = i;
      r.worst_is_est = false;
      r.worst_value = r.lct[i].hi;
      break;
    }
  }
  if (r.verdict != AbsVerdict::kMustOverflow) {
    for (TaskId i : *order) {
      const bool est_bad = r.est[i].lo < -kSafeTime || r.est[i].hi > kSafeTime ||
                           r.est[i].lo > kSafeTime || r.est[i].hi < -kSafeTime;
      const bool lct_bad = r.lct[i].lo < -kSafeTime || r.lct[i].hi > kSafeTime;
      if (!est_bad && !lct_bad) continue;
      r.verdict = AbsVerdict::kMayOverflow;
      r.worst_task = i;
      r.worst_is_est = est_bad;
      r.worst_value = est_bad ? r.est[i].hi : r.lct[i].lo;
      break;
    }
  }
  if (r.verdict == AbsVerdict::kMustOverflow) {
    // Reconstruct the witness chain of the violated chain sum.
    std::vector<TaskId>& parents = r.worst_is_est ? est_lo_parent : lct_hi_parent;
    TaskId cur = r.worst_task;
    for (std::size_t guard = 0; guard <= n && cur != kInvalidTask; ++guard) {
      r.worst_chain.push_back(cur);
      cur = parents[cur];
    }
    if (r.worst_is_est) std::reverse(r.worst_chain.begin(), r.worst_chain.end());
  }

  // Demand and cost envelopes (exact sums; merging never changes Theta).
  r.resources = app.resource_set();
  for (ResourceId res : r.resources) {
    __int128 sum = 0;
    for (const Task& t : app.tasks()) {
      if (t.uses(res)) sum = abs_sat_add(sum, static_cast<__int128>(t.comp));
    }
    r.demand.push_back(sum);
    const __int128 cost = static_cast<__int128>(app.catalog().cost(res));
    r.shared_cost_hi =
        abs_sat_add(r.shared_cost_hi, abs_sat_mul(cost < 0 ? -cost : cost, sum));
  }
  if (platform != nullptr) {
    const __int128 tasks = static_cast<__int128>(n);
    for (const NodeType& node : platform->node_types()) {
      const __int128 cost = static_cast<__int128>(node.cost);
      r.dedicated_cost_hi = abs_sat_add(
          r.dedicated_cost_hi, abs_sat_mul(cost < 0 ? -cost : cost, tasks));
    }
  }
  r.cost_may_overflow = r.shared_cost_hi > kInt64Max || r.dedicated_cost_hi > kInt64Max;
  return r;
}

void absint_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  const AbsIntResult* ai = ctx.absint;
  if (ai == nullptr) return;
  const Application& app = ctx.app;

  if (ai->verdict == AbsVerdict::kMustOverflow) {
    const char* side = ai->worst_is_est ? "EST" : "LCT";
    Diagnostic d = sink.make(
        "RTLB-E310", task_subject(app, ai->worst_task),
        std::string(side) + " chain sum reaches " + i128_str(ai->worst_value) +
            " for every merge decision (int64 holds " + std::to_string(INT64_MAX) +
            "); witness chain: " + chain_names(app, ai->worst_chain));
    d.task = ai->worst_task;
    d.line = ctx.task_line(ai->worst_task);
    sink.emit(std::move(d));
  } else if (ai->verdict == AbsVerdict::kMayOverflow) {
    const char* side = ai->worst_is_est ? "EST" : "LCT";
    Diagnostic d = sink.make(
        "RTLB-W311", task_subject(app, ai->worst_task),
        std::string(side) + " envelope reaches " + i128_str(ai->worst_value) +
            ", beyond the provably exact range of " + i128_str(kSafeTime) +
            " ticks; windows-dependent checks are skipped");
    d.task = ai->worst_task;
    d.line = ctx.task_line(ai->worst_task);
    sink.emit(std::move(d));
  }

  if (ai->cost_may_overflow) {
    const bool shared = ai->shared_cost_hi > static_cast<__int128>(INT64_MAX);
    sink.emit(sink.make(
        "RTLB-W312", "",
        std::string(shared ? "Eq. 7.1 shared" : "Eq. 7.2 dedicated") +
            " cost accumulation envelope reaches " +
            i128_str(shared ? ai->shared_cost_hi : ai->dedicated_cost_hi) +
            " (int64 holds " + std::to_string(INT64_MAX) + ")"));
  }
}

}  // namespace rtlb
