// Diagnostics for the static-analysis (lint) subsystem.
//
// Every finding the linter can produce carries a STABLE code (e.g.
// "RTLB-E101") drawn from the registry below; codes are never renumbered or
// reused, so downstream tooling can match on them. docs/LINT.md documents
// every code with fix-it guidance and is kept in sync with this table (the
// tests cross-check that every registered code is exercised at least once).
//
// Code ranges:
//   RTLB-E000          input could not be parsed into a model at all
//   RTLB-E0xx          structural violations (subsume Application::validate)
//   RTLB-E1xx/W1xx     temporal feasibility (EST/LCT-derived)
//   RTLB-E2xx/W2xx     platform coverage (shared and dedicated models)
//   RTLB-E3xx/W3xx     numeric safety near kTimeMax
//   RTLB-W4xx/N4xx     hygiene (advice; never blocks analysis)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace rtlb {

enum class Severity {
  /// The instance is malformed or provably hopeless; analysis is refused.
  kError,
  /// Suspicious but analyzable; refused only under --werror.
  kWarning,
  /// Advice; never affects the gate.
  kNote,
};

/// "error", "warning", or "note".
const char* severity_name(Severity s);

/// One machine-applicable edit anchored to a SourceMap line. The rtlb format
/// is line-oriented (one directive per line), so every repair is a whole-line
/// replacement or deletion; src/lint/fixit.hpp applies batches of these
/// atomically with per-line conflict detection.
struct FixEdit {
  enum class Kind { kReplaceLine, kDeleteLine };
  int line = 0;      // 1-based source line; passes never emit line-0 edits
  Kind kind = Kind::kReplaceLine;
  std::string text;  // replacement directive, no trailing newline

  bool operator==(const FixEdit&) const = default;
};

/// One finding. `subject` names the offending entity ("task 'alert' (#2)",
/// "edge T1 -> T2", "resource 'camera'"); `message` describes the violation
/// without repeating the subject; `hint` is optional fix-it guidance.
struct Diagnostic {
  std::string code;        // stable registry code, e.g. "RTLB-E101"
  Severity severity = Severity::kError;
  std::string subject;     // may be empty (whole-instance findings)
  std::string message;
  std::string hint;        // may be empty
  int line = 0;            // 1-based source line when the model came from a
                           // file (SourceMap); 0 = unknown/programmatic
  TaskId task = kInvalidTask;
  ResourceId resource = kInvalidResource;
  /// Machine-applicable repair (empty for advice-only findings, and always
  /// empty when the model was built programmatically -- no SourceMap lines
  /// to anchor an edit to).
  std::vector<FixEdit> fixes;
};

/// Registry entry: the default severity and the one-line summary used by the
/// documentation and the --explain output of rtlb_lint.
struct DiagInfo {
  const char* code;
  Severity severity;
  const char* summary;
  const char* fixit;
};

/// All registered codes, in code order.
std::span<const DiagInfo> all_diag_info();

/// Lookup; nullptr for an unknown code.
const DiagInfo* diag_info(std::string_view code);

/// Render one diagnostic as a compiler-style line (plus an indented hint
/// line when present):
///   file.rtlb:12: error: task 'alert' (#2): <message> [RTLB-E101]
/// `filename` may be empty (then the "file:line:" prefix is dropped unless a
/// line is known, in which case "line 12:" is used).
std::string format_diagnostic(const Diagnostic& d, const std::string& filename = "");

}  // namespace rtlb
