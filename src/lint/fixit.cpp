#include "src/lint/fixit.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "src/common/strings.hpp"

namespace rtlb {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

FixApplication apply_fixes(const std::string& source, const LintResult& result) {
  FixApplication out;
  std::vector<std::string> lines = split_lines(source);

  // Collect per line: identical duplicates coalesce (two diagnostics often
  // prescribe the same repair), anything else on the same line is a
  // conflict and the line is left untouched.
  std::map<int, std::vector<FixEdit>> by_line;
  for (const Diagnostic& d : result.diagnostics) {
    for (const FixEdit& e : d.fixes) {
      if (e.line <= 0 || static_cast<std::size_t>(e.line) > lines.size()) continue;
      std::vector<FixEdit>& slot = by_line[e.line];
      bool duplicate = false;
      for (const FixEdit& seen : slot) duplicate |= seen == e;
      if (!duplicate) slot.push_back(e);
    }
  }

  std::vector<bool> drop(lines.size(), false);
  for (const auto& [line, edits] : by_line) {
    if (edits.size() > 1) {
      ++out.skipped_conflict;
      out.log.push_back("line " + std::to_string(line) + ": " +
                        std::to_string(edits.size()) +
                        " conflicting fixes; line left untouched");
      continue;
    }
    const FixEdit& e = edits.front();
    if (e.kind == FixEdit::Kind::kDeleteLine) {
      drop[static_cast<std::size_t>(line - 1)] = true;
      out.log.push_back("line " + std::to_string(line) + ": deleted");
    } else {
      lines[static_cast<std::size_t>(line - 1)] = e.text;
      out.log.push_back("line " + std::to_string(line) + ": replaced with '" + e.text +
                        "'");
    }
    ++out.applied;
  }

  if (out.applied == 0) {
    out.text = source;  // byte-stable when nothing applied
    return out;
  }
  std::vector<std::string> kept;
  kept.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!drop[i]) kept.push_back(std::move(lines[i]));
  }
  out.text = join_lines(kept);
  return out;
}

std::string fix_diff(const std::string& before, const std::string& after,
                     const std::string& filename) {
  const std::vector<std::string> a = split_lines(before);
  const std::vector<std::string> b = split_lines(after);
  std::ostringstream out;
  out << "--- a/" << filename << "\n+++ b/" << filename << "\n";
  // Edits are line-local (replacements and deletions only, never
  // insertions), so a two-pointer walk recovers the hunks: matching lines
  // pair up, and a mismatch is a deletion when skipping it realigns the
  // texts (the following `a` line pairs with the current `b` line, or `b`
  // is exhausted), otherwise a replacement.
  std::size_t ai = 0;
  std::size_t bi = 0;
  while (ai < a.size()) {
    if (bi < b.size() && a[ai] == b[bi]) {
      ++ai;
      ++bi;
      continue;
    }
    const bool more_deleted = (a.size() - ai) > (b.size() - bi);
    const bool deletion =
        more_deleted &&
        (bi >= b.size() || (ai + 1 < a.size() && a[ai + 1] == b[bi]));
    out << "@@ line " << (ai + 1) << " @@\n-" << a[ai] << "\n";
    if (!deletion && bi < b.size()) {
      out << "+" << b[bi] << "\n";
      ++bi;
    }
    ++ai;
  }
  return out.str();
}

std::string render_task_directive(const Application& app, const Task& t) {
  const ResourceCatalog& cat = app.catalog();
  std::ostringstream out;
  out << "task " << t.name << " comp " << t.comp << " rel " << t.release << " deadline "
      << t.deadline << " proc " << cat.name(t.proc);
  if (!t.resources.empty()) {
    std::vector<std::string> names;
    for (ResourceId r : t.resources) names.push_back(cat.name(r));
    out << " res " << join(names, ",");
  }
  if (t.preemptive) out << " preemptive";
  return out.str();
}

std::string render_edge_directive(const Application& app, TaskId from, TaskId to,
                                  Time msg) {
  return "edge " + app.task(from).name + " " + app.task(to).name + " msg " +
         std::to_string(msg);
}

}  // namespace rtlb
