// Structural lint for recurrent workload templates (RTLB-E5xx / RTLB-W5xx).
//
// The recurrent front door (src/model/recurrent.hpp) is linted BEFORE
// lowering: every check here is stated on the template declarations -- a
// transaction's period/offset/horizon and its tasks' slot-relative windows
// -- so findings point at the `transaction`/`sporadic`/`ttask` line the user
// wrote, never at a generated instance "<tr>.<t>@<k>". Lowered applications
// then flow through the ordinary passes (src/lint/linter.hpp) like any flat
// instance; callers splice the two batches with merge_lint_results().
//
// This is NOT a registered Linter pass: the Linter walks an Application, and
// a workload is exactly the thing that does not exist as an Application yet.
// The gate relationship is the same as the structural pass's, though --
// analyze(Workload) refuses to lower when this pass finds errors, and
// Workload-level fixes obey the same atomic whole-line FixEdit contract
// (one fix per source line, applied by src/lint/fixit.hpp).
#pragma once

#include "src/lint/linter.hpp"
#include "src/model/platform.hpp"
#include "src/model/recurrent.hpp"

namespace rtlb {

/// Emit every RTLB-E5xx/W5xx finding for `workload` into `sink`. `platform`
/// is reserved for capacity-aware utilization checks and may be null.
/// Findings are ordered: per transaction in declaration order (structure,
/// cycle, release law, then per-task windows), then workload-wide findings
/// (hyperperiod overflow, utilization).
void recurrent_lint_pass(const ResourceCatalog& catalog, const Workload& workload,
                         const DedicatedPlatform* platform, DiagnosticSink& sink);

/// One-shot convenience: run recurrent_lint_pass() into a fresh LintResult.
LintResult lint_workload(const ResourceCatalog& catalog, const Workload& workload,
                         const DedicatedPlatform* platform = nullptr,
                         const LintOptions& options = {});

/// Splice the template-level batch in front of an application-level batch
/// (counters summed, truncation ORed). Used by the tools and by
/// analyze(Workload) so one report covers both halves of the front door.
LintResult merge_lint_results(LintResult front, LintResult back);

}  // namespace rtlb
