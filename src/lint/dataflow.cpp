#include "src/lint/dataflow.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/explain.hpp"
#include "src/lint/absint.hpp"

namespace rtlb {

namespace {

std::string task_subject(const Application& app, TaskId i) {
  return "task '" + app.task(i).name + "' (#" + std::to_string(i) + ")";
}

std::string edge_subject(const Application& app, TaskId from, TaskId to) {
  return "edge " + app.task(from).name + " -> " + app.task(to).name;
}

std::string chain_names(const Application& app, const std::vector<TaskId>& chain) {
  std::string out;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (k > 0) out += " -> ";
    out += app.task(chain[k]).name.empty() ? "#" + std::to_string(chain[k])
                                           : app.task(chain[k]).name;
  }
  return out;
}

/// N421: edges the transitive reduction drops and whose message is free.
/// (A redundant edge with a non-zero message still contributes a latency
/// term, so only zero-message redundancy is safe to advise away.)
void redundant_edges(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;
  if (app.dag().num_edges() == 0) return;
  const Dag reduced = app.dag().transitive_reduction();
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      if (app.message(i, j) != 0 || reduced.has_edge(i, j)) continue;
      Diagnostic d = sink.make("RTLB-N421", edge_subject(app, i, j),
                               "ordering already implied by the remaining edges "
                               "(transitive reduction drops this edge)");
      d.line = ctx.edge_line(i, j);
      if (d.line > 0) {
        d.fixes.push_back({d.line, FixEdit::Kind::kDeleteLine, ""});
      }
      sink.emit(std::move(d));
    }
  }
}

/// N422: tasks whose derived window is interior on BOTH sides -- E_i above
/// the release and L_i below the deadline -- so the window is set entirely
/// by the chain through the task. Collapsed tasks (negative slack) are
/// E101's finding and are skipped here.
void chain_determined_windows(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;
  const TaskWindows& w = *ctx.windows;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    if (w.slack(app, i) < 0) continue;
    if (w.est[i] <= t.release || w.lct[i] >= t.deadline) continue;

    // One dominating chain through i: the EST walk ends at i, the LCT walk
    // starts there; concatenated they are a single source-to-anchor path.
    std::vector<TaskId> chain = binding_est_chain(app, w, i);
    const std::vector<TaskId> lct_side = binding_lct_chain(app, w, i);
    chain.insert(chain.end(), lct_side.begin() + 1, lct_side.end());

    Time min_slack = w.slack(app, chain.front());
    TaskId min_task = chain.front();
    for (TaskId c : chain) {
      const Time s = w.slack(app, c);
      if (s < min_slack) {
        min_slack = s;
        min_task = c;
      }
    }
    Diagnostic d = sink.make(
        "RTLB-N422", task_subject(app, i),
        "window [E=" + std::to_string(w.est[i]) + ", L=" + std::to_string(w.lct[i]) +
            "] is set entirely by the chain " + chain_names(app, chain) +
            " (neither rel=" + std::to_string(t.release) + " nor D=" +
            std::to_string(t.deadline) + " binds); minimum slack along the chain is " +
            std::to_string(min_slack) + " at task '" + app.task(min_task).name + "'");
    d.task = i;
    d.line = ctx.task_line(i);
    sink.emit(std::move(d));
  }
}

/// N423: messages that can never be the binding term of either adjacent
/// window. Proved from the absint intervals: even the LARGEST value u's
/// unmerged term can take is dominated by a sound LOWER bound on the rest of
/// E_v's constraints (and mirrored for L_u), so the inequality holds for
/// every merge decision an oracle could make.
void dead_latency_edges(const LintContext& ctx, DiagnosticSink& sink) {
  const Application& app = ctx.app;
  const AbsIntResult& ai = *ctx.absint;

  for (TaskId u = 0; u < app.num_tasks(); ++u) {
    for (TaskId v : app.successors(u)) {
      const __int128 m = static_cast<__int128>(app.message(u, v));
      if (m <= 0) continue;  // zero messages are N402's finding

      // EST side of v: floor over v's OTHER constraints.
      __int128 est_floor = static_cast<__int128>(app.task(v).release);
      for (TaskId j : app.predecessors(v)) {
        if (j == u) continue;
        const __int128 contrib = abs_sat_add(
            abs_sat_add(ai.est[j].lo, static_cast<__int128>(app.task(j).comp)),
            app.message(j, v) < 0 ? static_cast<__int128>(app.message(j, v)) : 0);
        est_floor = std::max(est_floor, contrib);
      }
      const __int128 est_term = abs_sat_add(
          abs_sat_add(ai.est[u].hi, static_cast<__int128>(app.task(u).comp)), m);
      if (est_term > est_floor) continue;

      // LCT side of u: ceiling over u's OTHER constraints.
      __int128 lct_ceil = static_cast<__int128>(app.task(u).deadline);
      for (TaskId j : app.successors(u)) {
        if (j == v) continue;
        const __int128 contrib = abs_sat_add(
            abs_sat_add(ai.lct[j].hi, -static_cast<__int128>(app.task(j).comp)),
            app.message(u, j) < 0 ? -static_cast<__int128>(app.message(u, j)) : 0);
        lct_ceil = std::min(lct_ceil, contrib);
      }
      const __int128 lct_term = abs_sat_add(
          abs_sat_add(ai.lct[v].lo, -static_cast<__int128>(app.task(v).comp)), -m);
      if (lct_term < lct_ceil) continue;

      Diagnostic d = sink.make(
          "RTLB-N423", edge_subject(app, u, v),
          "message latency (msg " + std::to_string(app.message(u, v)) +
              ") can never bind: the EST term tops out at " + i128_str(est_term) +
              " against a floor of " + i128_str(est_floor) +
              ", and the send-deadline bottoms out at " + i128_str(lct_term) +
              " against a ceiling of " + i128_str(lct_ceil));
      d.line = ctx.edge_line(u, v);
      sink.emit(std::move(d));
    }
  }
}

}  // namespace

void dataflow_lint_pass(const LintContext& ctx, DiagnosticSink& sink) {
  redundant_edges(ctx, sink);
  if (ctx.windows == nullptr || ctx.absint == nullptr) return;
  chain_determined_windows(ctx, sink);
  dead_latency_edges(ctx, sink);
}

}  // namespace rtlb
