// Baseline files: the "known findings" mechanism shared by rtlb_lint and
// rtlb_audit. A baseline is a sorted text file of one opaque key per line;
// blank lines and lines starting with '#' are comments (the audit baseline
// uses them to record WHY each entry is allowed to stand). A finding whose
// key appears in the baseline is reported but does not fail the run.
#pragma once

#include <set>
#include <string>

namespace rtlb {

/// Read the key set from `path`. Throws ModelError when the file cannot be
/// opened -- a missing baseline must be a loud usage error, not an empty set
/// that silently un-suppresses everything.
std::set<std::string> read_baseline_file(const std::string& path);

/// Write `keys` to `path`, one per line, sorted (std::set order). `header`
/// lines (if any) are emitted first as '#' comments. Throws ModelError when
/// the file cannot be written.
void write_baseline_file(const std::string& path, const std::set<std::string>& keys,
                         const std::string& header = "");

}  // namespace rtlb
