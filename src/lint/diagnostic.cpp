#include "src/lint/diagnostic.hpp"

#include <array>

namespace rtlb {

namespace {

// Keep in code order and in sync with docs/LINT.md. Codes are append-only.
constexpr std::array<DiagInfo, 36> kRegistry{{
    {"RTLB-E000", Severity::kError, "input could not be parsed into a model",
     "fix the reported parse error; see docs/FORMAT.md for the grammar"},
    {"RTLB-E001", Severity::kError, "computation time must be positive",
     "set comp >= 1 (zero-cost tasks can be modeled as comp 1 with slack)"},
    {"RTLB-E002", Severity::kError, "processor-type id is not in the catalog",
     "declare the processor type before the task, or fix the id"},
    {"RTLB-E003", Severity::kError, "phi_i names a plain resource, not a processor type",
     "use `proctype` for the entity tasks execute on; `resource` entries may only appear in R_i"},
    {"RTLB-E004", Severity::kError, "resource id in R_i is not in the catalog",
     "declare the resource before the task, or fix the id"},
    {"RTLB-E005", Severity::kError, "R_i contains a processor type",
     "a task holds exactly one processor via proc; remove the processor type from res"},
    {"RTLB-E006", Severity::kError, "duplicate task name",
     "rename one of the tasks; names are the join key for edges and schedules"},
    {"RTLB-E007", Severity::kError, "precedence graph has a cycle",
     "remove one edge of the reported cycle; applications must be DAGs"},
    {"RTLB-E008", Severity::kError, "deadline precedes release time",
     "ensure rel <= deadline; the task's window is empty"},
    {"RTLB-E009", Severity::kError, "window [rel, D] shorter than computation time",
     "relax the deadline or release so that deadline - rel >= comp"},
    {"RTLB-E101", Severity::kError, "derived window cannot contain the task (L_i - E_i < C_i)",
     "no schedule on ANY system can meet the constraint chain; relax the deadline on the "
     "reported task or shrink an upstream message/computation (see diagnose() for the chain)"},
    {"RTLB-W102", Severity::kWarning, "non-preemptive task with zero derived slack",
     "the start time is fully determined; any extra delay makes the instance infeasible"},
    {"RTLB-W103", Severity::kWarning, "preemptive task with a tight window (L_i - E_i == C_i)",
     "the task must occupy every instant of [E_i, L_i], so preemption buys no flexibility and "
     "any upstream delay is fatal; widen the window if that is not intended"},
    {"RTLB-W201", Severity::kWarning, "resource declared but used by no task",
     "remove the declaration, or add it to some task's res list; its ST_r (and partition) "
     "is empty and LB_r would be 0"},
    {"RTLB-E202", Severity::kError, "no node type can host the task (eta_i is empty)",
     "add a node type carrying the task's processor type plus all of R_i; the covering "
     "constraints of Eq. 7.2 are infeasible as written"},
    {"RTLB-W203", Severity::kWarning, "node type can host no task",
     "remove the menu entry or adjust its processor/resources; it only enlarges the ILP"},
    {"RTLB-E301", Severity::kError, "total demand on the resource overflows the Time range",
     "rescale computation times; bounds on this input would silently wrap"},
    {"RTLB-W302", Severity::kWarning, "task timing magnitude beyond kTimeMax",
     "keep comp/rel/deadline within kTimeMax (INT64_MAX/4); window arithmetic beyond it "
     "may saturate"},
    {"RTLB-W401", Severity::kWarning, "task is isolated (no predecessors or successors)",
     "connect it to the DAG or confirm it is intentionally independent"},
    {"RTLB-N402", Severity::kNote, "zero-size message on an edge",
     "a zero msg makes co-location free; if transfer is never paid, consider merging the tasks"},
    {"RTLB-N403", Severity::kNote, "ST_r forms a single partition block",
     "partitioning gives no scan speedup for this resource; expect the full O(k^2) interval "
     "scan"},
    {"RTLB-E310", Severity::kError,
     "interval analysis proves a constraint chain overflows the Time range",
     "every merge decision yields an EST/LCT value outside int64 along the reported chain; "
     "rescale computation times and messages before any window can be computed"},
    {"RTLB-W311", Severity::kWarning,
     "interval analysis cannot bound the window computation within the safe Time range",
     "some EST/LCT envelope endpoint exceeds kSafeTime (INT64_MAX/2); windows-dependent "
     "checks are skipped because the engine's arithmetic is no longer provably exact"},
    {"RTLB-W312", Severity::kWarning,
     "cost accumulation may overflow the Cost range",
     "the Eq. 7.1/7.2 envelope sum of cost_r x demand_r exceeds int64; rescale resource "
     "costs or computation times"},
    {"RTLB-N421", Severity::kNote, "transitively redundant zero-message precedence edge",
     "the ordering is already implied by the remaining edges and the message is free; "
     "delete the edge to shrink the DAG"},
    {"RTLB-N422", Severity::kNote,
     "derived window fully inherited from a dominating constraint chain",
     "neither the release nor the deadline of this task binds; its window is set entirely "
     "by the reported chain -- tune the chain, not the task's own timing"},
    {"RTLB-N423", Severity::kNote, "message latency can never bind any window constraint",
     "on both adjacent windows the latency term is dominated by other constraints, so this "
     "msg value is dead -- any value up to the reported margin changes nothing"},
    {"RTLB-E501", Severity::kError, "transaction period / minimum inter-arrival must be positive",
     "set period (or mininter) >= 1; the fix proposes the smallest period containing every "
     "declared window"},
    {"RTLB-E502", Severity::kError, "release offset lies outside [0, period)",
     "offsets are slot-relative; shift the offset into the period (the fix drops it to 0 "
     "when the task still fits there)"},
    {"RTLB-E503", Severity::kError, "template relative deadline reaches beyond the period",
     "activations would overlap their own successor chain; tighten the deadline to the "
     "period (the fix drops the deadline key, meaning end-of-slot)"},
    {"RTLB-E504", Severity::kError, "template window cannot hold the task",
     "deadline - offset < comp inside one activation slot; widen the deadline, shrink the "
     "offset, or reduce comp"},
    {"RTLB-E505", Severity::kError, "sporadic transaction has no usable horizon",
     "declare `horizon` past the offset, or add a periodic transaction whose hyperperiod "
     "can be borrowed (the fix sets horizon to 4x mininter)"},
    {"RTLB-E506", Severity::kError, "template precedence edges form a cycle",
     "remove one tedge of the reported transaction; templates must be DAGs"},
    {"RTLB-E507", Severity::kError, "malformed recurrent template",
     "structural violation (unknown/duplicate names, bad ids, out-of-range edge, negative "
     "scalar); fix the declaration -- see docs/FORMAT.md for the grammar"},
    {"RTLB-E508", Severity::kError, "hyperperiod of the transaction periods overflows Time",
     "the lcm of the declared periods exceeds kTimeMax; make the periods harmonic or "
     "rescale the time unit"},
    {"RTLB-W510", Severity::kWarning,
     "steady-state utilization of a processor type exceeds one unit",
     "sum of comp/period over the type's template tasks is > 1; the lowered instance needs "
     "more than one processor of this type no matter the schedule"},
}};

}  // namespace

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}

std::span<const DiagInfo> all_diag_info() { return kRegistry; }

const DiagInfo* diag_info(std::string_view code) {
  for (const DiagInfo& info : kRegistry) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

std::string format_diagnostic(const Diagnostic& d, const std::string& filename) {
  std::string out;
  if (!filename.empty()) {
    out += filename;
    if (d.line > 0) out += ":" + std::to_string(d.line);
    out += ": ";
  } else if (d.line > 0) {
    out += "line " + std::to_string(d.line) + ": ";
  }
  out += severity_name(d.severity);
  out += ": ";
  if (!d.subject.empty()) {
    out += d.subject;
    out += ": ";
  }
  out += d.message;
  out += " [" + d.code + "]";
  if (!d.hint.empty()) out += "\n  hint: " + d.hint;
  return out;
}

}  // namespace rtlb
