// Architectural synthesis for the dedicated model -- the use case the paper
// motivates in Sections 1 and 7: search the space of system configurations
// (how many nodes of each type) for the cheapest one on which the
// application can actually be scheduled.
//
// The search enumerates count vectors in increasing cost order. Each popped
// candidate normally pays for a feasibility probe (the EDF list scheduler);
// with bound pruning enabled, candidates that violate the Section-7 covering
// constraints (sum_n x_n * gamma_nr >= LB_r, and a host for every task) are
// rejected without scheduling. bench_synthesis measures how much work the
// bounds save -- the paper's headline claim.
#pragma once

#include <cstdint>

#include "src/core/lower_bound.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct SynthesisOptions {
  /// Reject candidates violating the LB_r covering constraints before
  /// running the scheduler.
  bool use_lower_bound_pruning = true;
  /// Per-type cap on instances, bounding the lattice.
  int max_instances_per_type = 6;
  /// Abort (throw) after this many popped candidates.
  std::int64_t max_candidates = 2'000'000;
};

struct SynthesisResult {
  bool found = false;
  /// Instances per node type of the cheapest feasible configuration.
  std::vector<int> counts;
  Cost cost = 0;
  /// The schedule that certified feasibility.
  Schedule schedule{0};

  /// Work counters for the with/without-pruning comparison.
  std::int64_t candidates_considered = 0;  // configurations popped
  std::int64_t feasibility_checks = 0;     // list-scheduler runs
  std::int64_t pruned_by_bounds = 0;       // rejected by LB covering
};

/// Find the cheapest dedicated configuration on which the EDF list scheduler
/// meets all constraints. `bounds` are the LB_r values from the analysis
/// (used only when pruning is enabled).
SynthesisResult synthesize_dedicated(const Application& app, const DedicatedPlatform& platform,
                                     const std::vector<ResourceBound>& bounds,
                                     const SynthesisOptions& options = {});

class AnalysisSession;

/// Same search with the bounds pulled from a memoized AnalysisSession --
/// the session's analyze() is warm across a caller's outer loop (perturb
/// the application, re-synthesize), so repeated syntheses stop paying for
/// cold bound recomputation. The session must carry a platform (ModelError
/// otherwise).
SynthesisResult synthesize_dedicated(AnalysisSession& session,
                                     const SynthesisOptions& options = {});

/// Expand a count vector into a concrete machine.
DedicatedConfig expand_counts(const std::vector<int>& counts);

}  // namespace rtlb
