#include "src/synth/pareto.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "src/sched/list_scheduler.hpp"

namespace rtlb {

namespace {

struct Candidate {
  Cost cost;
  std::vector<int> counts;
  bool operator>(const Candidate& other) const {
    if (cost != other.cost) return cost > other.cost;
    return counts > other.counts;
  }
};

bool covers_bounds(const DedicatedPlatform& platform,
                   const std::vector<ResourceBound>& bounds, const std::vector<int>& counts) {
  for (const ResourceBound& b : bounds) {
    std::int64_t supply = 0;
    for (std::size_t n = 0; n < counts.size(); ++n) {
      supply += static_cast<std::int64_t>(counts[n]) * platform.node_type(n).units_of(b.resource);
    }
    if (supply < b.bound) return false;
  }
  return true;
}

}  // namespace

std::vector<ParetoPoint> pareto_frontier(const Application& app,
                                         const DedicatedPlatform& platform,
                                         const std::vector<ResourceBound>& bounds,
                                         const ParetoOptions& options) {
  std::vector<ParetoPoint> frontier;
  const std::size_t num_types = platform.num_node_types();
  if (num_types == 0) return frontier;

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> open;
  std::set<std::vector<int>> seen;
  std::vector<int> zero(num_types, 0);
  open.push(Candidate{0, zero});
  seen.insert(zero);

  Time best_makespan = kTimeMax;
  std::int64_t popped = 0;
  while (!open.empty()) {
    Candidate cand = open.top();
    open.pop();
    if (++popped > options.max_candidates) {
      throw std::runtime_error("pareto_frontier: candidate budget exhausted");
    }
    for (std::size_t n = 0; n < num_types; ++n) {
      if (cand.counts[n] >= options.max_instances_per_type) continue;
      Candidate next = cand;
      ++next.counts[n];
      next.cost += platform.node_type(n).cost;
      if (seen.insert(next.counts).second) open.push(std::move(next));
    }

    if (std::all_of(cand.counts.begin(), cand.counts.end(), [](int c) { return c == 0; })) {
      continue;
    }
    if (!covers_bounds(platform, bounds, cand.counts)) continue;

    const DedicatedConfig config = expand_counts(cand.counts);
    const ListScheduleResult sched = list_schedule_dedicated(app, platform, config);
    if (!sched.feasible) continue;
    const Time makespan = sched.schedule.makespan(app);
    if (makespan < best_makespan) {
      best_makespan = makespan;
      frontier.push_back(ParetoPoint{cand.counts, cand.cost, makespan});
      if (options.good_enough > 0 && makespan <= options.good_enough) break;
    }
  }
  return frontier;
}

}  // namespace rtlb
