// Min-cost provisioning for the SHARED model -- the counterpart of
// synthesize_dedicated. Searches capacity vectors (units per processor type
// and resource) in ascending Eq.-7.1 cost order, pruned by the per-resource
// lower bounds (no vector below LB_r is ever probed), and certifies
// candidates with a scheduler probe.
#pragma once

#include <cstdint>

#include "src/core/lower_bound.hpp"
#include "src/model/application.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct SharedSynthesisOptions {
  /// Per-resource cap on provisioned units, bounding the lattice.
  int max_units_per_resource = 6;
  std::int64_t max_candidates = 1'000'000;
  /// Probe with annealing when the EDF list scheduler fails (slower,
  /// stronger; finds co-location schedules EDF cannot).
  bool anneal_fallback = false;
  std::uint64_t anneal_seed = 1;
  int anneal_evaluations = 2000;
};

struct SharedSynthesisResult {
  bool found = false;
  Capacities caps;
  Cost cost = 0;
  Schedule schedule{0};
  std::int64_t candidates_considered = 0;
  std::int64_t scheduler_probes = 0;
};

/// Cheapest shared system (by Eq.-7.1 pricing over the catalog costs) on
/// which a scheduler probe certifies feasibility. The LB_r floor is built
/// in: the search lattice STARTS at the bound vector, which is the paper's
/// pruning claim applied to the shared model.
SharedSynthesisResult synthesize_shared(const Application& app,
                                        const std::vector<ResourceBound>& bounds,
                                        const SharedSynthesisOptions& options = {});

class AnalysisSession;

/// Same search with the bounds pulled from a memoized AnalysisSession, so
/// an outer perturb-and-resynthesize loop pays only for the deltas.
SharedSynthesisResult synthesize_shared(AnalysisSession& session,
                                        const SharedSynthesisOptions& options = {});

}  // namespace rtlb
