#include "src/synth/synthesis.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "src/core/session.hpp"
#include "src/sched/list_scheduler.hpp"

namespace rtlb {

DedicatedConfig expand_counts(const std::vector<int>& counts) {
  DedicatedConfig config;
  for (std::size_t type = 0; type < counts.size(); ++type) {
    for (int k = 0; k < counts[type]; ++k) config.instance_types.push_back(type);
  }
  return config;
}

namespace {

/// The Section-7 covering test: enough units of every bounded resource and a
/// host for every task.
bool satisfies_bounds(const Application& app, const DedicatedPlatform& platform,
                      const std::vector<ResourceBound>& bounds, const std::vector<int>& counts) {
  for (const ResourceBound& b : bounds) {
    std::int64_t supply = 0;
    for (std::size_t n = 0; n < counts.size(); ++n) {
      supply += static_cast<std::int64_t>(counts[n]) * platform.node_type(n).units_of(b.resource);
    }
    if (supply < b.bound) return false;
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    bool hosted = false;
    for (std::size_t n = 0; n < counts.size() && !hosted; ++n) {
      hosted = counts[n] > 0 && platform.node_type(n).can_host(app.task(i).proc,
                                                               app.task(i).resources);
    }
    if (!hosted) return false;
  }
  return true;
}

struct Candidate {
  Cost cost;
  std::vector<int> counts;
  bool operator>(const Candidate& other) const {
    if (cost != other.cost) return cost > other.cost;
    return counts > other.counts;  // deterministic tie-break
  }
};

}  // namespace

SynthesisResult synthesize_dedicated(const Application& app, const DedicatedPlatform& platform,
                                     const std::vector<ResourceBound>& bounds,
                                     const SynthesisOptions& options) {
  SynthesisResult out;
  const std::size_t num_types = platform.num_node_types();
  if (num_types == 0) return out;

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> open;
  std::set<std::vector<int>> seen;

  std::vector<int> zero(num_types, 0);
  open.push(Candidate{0, zero});
  seen.insert(zero);

  while (!open.empty()) {
    Candidate cand = open.top();
    open.pop();
    ++out.candidates_considered;
    if (out.candidates_considered > options.max_candidates) {
      throw std::runtime_error("synthesize_dedicated: candidate budget exhausted");
    }

    // Expand successors first so the lattice is fully enumerated in cost
    // order regardless of whether this candidate survives the filters.
    for (std::size_t n = 0; n < num_types; ++n) {
      if (cand.counts[n] >= options.max_instances_per_type) continue;
      Candidate next = cand;
      ++next.counts[n];
      next.cost += platform.node_type(n).cost;
      if (seen.insert(next.counts).second) open.push(std::move(next));
    }

    if (options.use_lower_bound_pruning &&
        !satisfies_bounds(app, platform, bounds, cand.counts)) {
      ++out.pruned_by_bounds;
      continue;
    }
    if (std::all_of(cand.counts.begin(), cand.counts.end(), [](int c) { return c == 0; })) {
      continue;  // the empty machine cannot host anything
    }

    ++out.feasibility_checks;
    const DedicatedConfig config = expand_counts(cand.counts);
    ListScheduleResult sched = list_schedule_dedicated(app, platform, config);
    if (sched.feasible) {
      out.found = true;
      out.counts = cand.counts;
      out.cost = cand.cost;
      out.schedule = std::move(sched.schedule);
      return out;
    }
  }
  return out;
}

SynthesisResult synthesize_dedicated(AnalysisSession& session, const SynthesisOptions& options) {
  const DedicatedPlatform* platform = session.platform();
  if (platform == nullptr) {
    throw ModelError("synthesize_dedicated: session carries no platform");
  }
  const AnalysisResult& res = session.analyze();
  return synthesize_dedicated(session.app(), *platform, res.bounds, options);
}

}  // namespace rtlb
