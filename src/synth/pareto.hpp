// Cost / makespan trade-off exploration -- the second axis of the design
// space the paper's conclusion gestures at. Where synthesize_dedicated stops
// at the first (cheapest) feasible machine, this search keeps going and
// reports the Pareto frontier: spending more on hardware buys a shorter
// schedule, until the communication-aware critical path floors it.
#pragma once

#include <vector>

#include "src/core/lower_bound.hpp"
#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"
#include "src/synth/synthesis.hpp"

namespace rtlb {

struct ParetoPoint {
  std::vector<int> counts;  // instances per node type
  Cost cost = 0;
  /// Makespan the EDF list scheduler achieves on this machine.
  Time makespan = 0;
};

struct ParetoOptions {
  int max_instances_per_type = 4;
  std::int64_t max_candidates = 500'000;
  /// Stop once a machine achieves this makespan (0 = explore the whole
  /// lattice). Pass the critical time to stop at the floor.
  Time good_enough = 0;
};

/// Enumerate machines in ascending cost (with LB pruning) and return the
/// deadline-feasible ones that strictly improve the best makespan seen --
/// i.e. the (cost, makespan) Pareto frontier under the EDF probe, in
/// ascending cost order.
std::vector<ParetoPoint> pareto_frontier(const Application& app,
                                         const DedicatedPlatform& platform,
                                         const std::vector<ResourceBound>& bounds,
                                         const ParetoOptions& options = {});

}  // namespace rtlb
