#include "src/synth/shared_synthesis.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "src/core/session.hpp"
#include "src/sched/annealing.hpp"
#include "src/sched/list_scheduler.hpp"

namespace rtlb {

namespace {

struct Candidate {
  Cost cost;
  std::vector<int> units;
  bool operator>(const Candidate& other) const {
    if (cost != other.cost) return cost > other.cost;
    return units > other.units;
  }
};

}  // namespace

SharedSynthesisResult synthesize_shared(const Application& app,
                                        const std::vector<ResourceBound>& bounds,
                                        const SharedSynthesisOptions& options) {
  SharedSynthesisResult out;
  const ResourceCatalog& cat = app.catalog();
  const std::vector<ResourceId> res = app.resource_set();
  if (res.empty()) {
    out.found = true;
    out.caps = Capacities(cat.size(), 0);
    return out;
  }

  // The lattice starts AT the lower-bound vector: everything below is
  // provably infeasible and is never even generated.
  std::vector<int> floor_units(res.size(), 0);
  Cost floor_cost = 0;
  for (std::size_t k = 0; k < res.size(); ++k) {
    for (const ResourceBound& b : bounds) {
      if (b.resource == res[k]) floor_units[k] = static_cast<int>(std::max<std::int64_t>(
                                    1, b.bound));
    }
    floor_cost += cat.cost(res[k]) * floor_units[k];
  }

  // A floor already above the lattice cap is an immediate (provable) no.
  for (int units : floor_units) {
    if (units > options.max_units_per_resource) return out;
  }

  auto to_caps = [&](const std::vector<int>& units) {
    Capacities caps(cat.size(), 0);
    for (std::size_t k = 0; k < res.size(); ++k) caps.set(res[k], units[k]);
    return caps;
  };

  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> open;
  std::set<std::vector<int>> seen;
  open.push(Candidate{floor_cost, floor_units});
  seen.insert(floor_units);

  while (!open.empty()) {
    Candidate cand = open.top();
    open.pop();
    if (++out.candidates_considered > options.max_candidates) {
      throw std::runtime_error("synthesize_shared: candidate budget exhausted");
    }
    for (std::size_t k = 0; k < res.size(); ++k) {
      if (cand.units[k] >= options.max_units_per_resource) continue;
      Candidate next = cand;
      ++next.units[k];
      next.cost += cat.cost(res[k]);
      if (seen.insert(next.units).second) open.push(std::move(next));
    }

    const Capacities caps = to_caps(cand.units);
    ++out.scheduler_probes;
    ListScheduleResult probe = list_schedule_shared(app, caps);
    bool feasible = probe.feasible;
    Schedule schedule = std::move(probe.schedule);
    if (!feasible && options.anneal_fallback) {
      AnnealOptions aopts;
      aopts.seed = options.anneal_seed;
      aopts.max_evaluations = options.anneal_evaluations;
      AnnealResult sa = anneal_schedule_shared(app, caps, aopts);
      feasible = sa.feasible;
      if (feasible) schedule = std::move(sa.schedule);
    }
    if (feasible) {
      out.found = true;
      out.caps = caps;
      out.cost = cand.cost;
      out.schedule = std::move(schedule);
      return out;
    }
  }
  return out;
}

SharedSynthesisResult synthesize_shared(AnalysisSession& session,
                                        const SharedSynthesisOptions& options) {
  const AnalysisResult& res = session.analyze();
  return synthesize_shared(session.app(), res.bounds, options);
}

}  // namespace rtlb
