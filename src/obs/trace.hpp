// Observability layer: stage spans and named counters on a monotonic clock.
//
// The analysis pipeline (src/core/pipeline.hpp) is instrumented with RAII
// spans -- one per stage, nested under one "pipeline" root span per run --
// and per-span counters (blocks scanned, intervals evaluated, cache hits,
// thread-pool tasks dispatched). Everything funnels through a Trace object
// the CALLER owns and passes in via AnalysisOptions::trace; when that
// pointer is null (the default) the instrumentation collapses to a single
// branch per span and the pipeline runs at full speed -- tracing off is the
// shipping configuration and costs <1% (bench_pipeline measures it).
//
// Two export formats:
//   * Trace::json()        -- {"spans": [...], "counters": [...]}, the
//                             stable schema tests and reports consume;
//   * Trace::chrome_json() -- the Chrome trace-event format ("traceEvents"
//                             complete events, microsecond timestamps),
//                             loadable in chrome://tracing and Perfetto.
//
// A Trace is NOT thread-safe: the pipeline records spans only from the
// calling thread (worker threads are accounted via counters, not spans),
// and drivers that fan work over a pool use one Trace per driver thread.
#pragma once

#include <cstdint>
#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/json.hpp"

namespace rtlb {

/// One named tally attached to a span (or to the trace root).
struct TraceCounter {
  std::string name;
  std::int64_t value = 0;
};

/// One closed span: a named interval on the trace's monotonic clock.
/// `parent` indexes the enclosing span in Trace::spans(), -1 for roots, so
/// consumers can rebuild the nesting exactly (the schema test does).
struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;  ///< offset from the Trace epoch
  std::uint64_t dur_ns = 0;    ///< 0 while still open
  int parent = -1;
  std::vector<TraceCounter> counters;
};

/// An append-only recording of spans and counters. Spans open/close in
/// strict stack order (enforced); counters accumulate on the innermost open
/// span, or on the trace root when no span is open.
class Trace {
 public:
  Trace() : epoch_(std::chrono::steady_clock::now()) {}

  /// Open a span; returns its index. Prefer ScopedSpan.
  int begin_span(std::string_view name);
  /// Close the innermost open span (must be `index` -- strict LIFO).
  void end_span(int index);

  /// Add `delta` to the named counter of the innermost open span (the trace
  /// root when none is open). Counters with the same name on the same span
  /// accumulate.
  void count(std::string_view name, std::int64_t delta);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceCounter>& root_counters() const { return root_counters_; }
  /// Number of spans still open (0 after balanced instrumentation).
  std::size_t open_depth() const { return open_.size(); }

  /// Drop every recorded span and counter; the epoch is preserved so spans
  /// recorded before and after a clear stay on one clock.
  void clear();

  /// Stable schema: {"spans": [{"name", "start_us", "dur_us", "parent",
  /// "counters": {..}}], "counters": {..}}. Timestamps in integer
  /// microseconds.
  Json json() const;

  /// Chrome trace-event format: {"traceEvents": [{"name", "cat", "ph": "X",
  /// "ts", "dur", "pid", "tid", "args": {..}}], "displayTimeUnit": "ms"}.
  Json chrome_json() const;

 private:
  std::uint64_t now_ns() const;

  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  std::vector<int> open_;  ///< stack of open span indices
  std::vector<TraceCounter> root_counters_;
};

/// Null-safe RAII span: does nothing at all when constructed with a null
/// Trace, so instrumented code needs no "if (tracing)" around its spans or
/// counters.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name)
      : trace_(trace), index_(trace ? trace->begin_span(name) : -1) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->end_span(index_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Counter on THIS span (no-op when tracing is off).
  void count(std::string_view name, std::int64_t delta) {
    if (trace_ != nullptr) trace_->count(name, delta);
  }

  /// Span index in the owning trace; -1 when tracing is off.
  int index() const { return index_; }

 private:
  Trace* trace_;
  int index_;
};

}  // namespace rtlb
