#include "src/obs/trace.hpp"

#include "src/common/types.hpp"

namespace rtlb {

namespace {

/// Counters accumulate by name within one span.
void accumulate(std::vector<TraceCounter>& counters, std::string_view name,
                std::int64_t delta) {
  for (TraceCounter& c : counters) {
    if (c.name == name) {
      c.value += delta;
      return;
    }
  }
  counters.push_back(TraceCounter{std::string(name), delta});
}

Json counters_json(const std::vector<TraceCounter>& counters) {
  Json obj = Json::object();
  for (const TraceCounter& c : counters) obj.set(c.name, c.value);
  return obj;
}

}  // namespace

std::uint64_t Trace::now_ns() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch_)
                                        .count());
}

int Trace::begin_span(std::string_view name) {
  TraceSpan span;
  span.name = std::string(name);
  span.start_ns = now_ns();
  span.parent = open_.empty() ? -1 : open_.back();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void Trace::end_span(int index) {
  RTLB_CHECK(!open_.empty() && open_.back() == index,
             "Trace::end_span: spans must close in LIFO order");
  TraceSpan& span = spans_[static_cast<std::size_t>(index)];
  span.dur_ns = now_ns() - span.start_ns;
  open_.pop_back();
}

void Trace::count(std::string_view name, std::int64_t delta) {
  if (open_.empty()) {
    accumulate(root_counters_, name, delta);
  } else {
    accumulate(spans_[static_cast<std::size_t>(open_.back())].counters, name, delta);
  }
}

void Trace::clear() {
  RTLB_CHECK(open_.empty(), "Trace::clear: spans still open");
  spans_.clear();
  root_counters_.clear();
}

Json Trace::json() const {
  Json root = Json::object();
  Json spans = Json::array();
  for (const TraceSpan& s : spans_) {
    // Same endpoint-derived rounding as chrome_json(), so nesting stays
    // exact in the integer microseconds consumers see.
    const std::int64_t start = static_cast<std::int64_t>(s.start_ns / 1000);
    const std::int64_t end = static_cast<std::int64_t>((s.start_ns + s.dur_ns) / 1000);
    Json entry = Json::object();
    entry.set("name", s.name)
        .set("start_us", start)
        .set("dur_us", end - start)
        .set("parent", s.parent);
    if (!s.counters.empty()) entry.set("counters", counters_json(s.counters));
    spans.push(std::move(entry));
  }
  root.set("spans", std::move(spans));
  root.set("counters", counters_json(root_counters_));
  return root;
}

Json Trace::chrome_json() const {
  Json events = Json::array();
  for (const TraceSpan& s : spans_) {
    // ts and dur are truncated to whole microseconds; deriving dur from the
    // truncated ENDPOINTS (rather than truncating dur_ns itself) keeps
    // nesting exact after rounding -- a child that closed before its parent
    // in nanoseconds can never overshoot the parent's envelope in the
    // emitted integers (tools/trace_validate checks this).
    const std::int64_t ts = static_cast<std::int64_t>(s.start_ns / 1000);
    const std::int64_t end = static_cast<std::int64_t>((s.start_ns + s.dur_ns) / 1000);
    Json event = Json::object();
    event.set("name", s.name)
        .set("cat", "rtlb")
        .set("ph", "X")
        .set("ts", ts)
        .set("dur", end - ts)
        .set("pid", 1)
        .set("tid", 1);
    if (!s.counters.empty()) event.set("args", counters_json(s.counters));
    events.push(std::move(event));
  }
  Json root = Json::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root;
}

}  // namespace rtlb
