// The audit rule matchers: one function per RuleKind, each a pattern
// matcher over a SourceFile's token stream (plus its include edges). Every
// matcher reports findings at the exact token line; what each one can and
// cannot see is documented per-rule in docs/AUDIT.md.
#pragma once

#include "src/audit/manifest.hpp"
#include "src/audit/source.hpp"
#include "src/lint/linter.hpp"

namespace rtlb::audit {

/// Run `rule` over `src`, emitting findings into `sink` (a DiagnosticSink
/// constructed over the audit registry). Suppressions are NOT applied here;
/// the driver filters them so it can count what was suppressed.
void run_rule(const Rule& rule, const SourceFile& src, DiagnosticSink& sink);

}  // namespace rtlb::audit
