// The audit driver: scan a source tree, run every manifest rule over every
// file, filter honoured `audit-ok` suppressions, and (optionally) mark
// baselined findings. tools/rtlb_audit is a thin CLI over this; the tests
// call it in-process.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/audit/manifest.hpp"
#include "src/common/json.hpp"
#include "src/lint/diagnostic.hpp"

namespace rtlb::audit {

struct Finding {
  std::string file;  // root-relative path
  Diagnostic diag;   // code/severity/subject/message/hint/line from the audit registry
  bool baselined = false;
};

struct Result {
  std::vector<Finding> findings;  // sorted by (file, line, code); includes baselined
  int files_scanned = 0;
  int suppressed = 0;  // findings dropped by honoured audit-ok comments

  /// Findings that are NOT baselined -- what the exit code and CI gate on.
  int new_findings() const;
  int baselined_count() const;
};

/// Scan `root` for the manifest's roots (or only `files`, root-relative,
/// when non-empty) and run every rule. Unreadable listed files throw
/// ModelError; unreadable directories are simply empty.
Result run_audit(const Manifest& manifest, const std::string& root,
                 const std::vector<std::string>& files = {});

/// The stable baseline identity of one finding: "file<TAB>code<TAB>subject".
/// Line-free, so a baseline survives unrelated edits that renumber a file.
std::string baseline_key(const Finding& f);

/// Mark findings whose key appears in `baseline`.
void apply_baseline(Result& result, const std::set<std::string>& baseline);

/// Text report: one compiler-style line per finding (baselined ones tagged),
/// then a one-line summary.
std::string format_audit_text(const Result& result, bool quiet_hints = false);

/// JSON view: {"files_scanned", "errors", "warnings", "notes", "suppressed",
/// "baselined", "findings": [{"file", "line", "code", "severity", "subject",
/// "message", "hint", "baselined"}]}. Counters describe NON-baselined
/// findings, mirroring the exit-code contract.
Json audit_json(const Result& result);

/// Enumerate the .cpp/.hpp files under the manifest roots, root-relative,
/// sorted. Exposed for the CLI's file listing and the tests.
std::vector<std::string> list_sources(const Manifest& manifest, const std::string& root);

}  // namespace rtlb::audit
