#include "src/audit/registry.hpp"

#include <array>

namespace rtlb {

namespace {

// Keep in code order and in sync with docs/AUDIT.md. Codes are append-only.
// Every audit code is an error: a finding either gets fixed, carries an
// inline `audit-ok` justification, or lands in the committed audit.baseline
// with a comment -- there is no advisory tier for invariant violations.
constexpr std::array<DiagInfo, 9> kRegistry{{
    {"RTLB-A001", Severity::kError,
     "module include edge is not in the declared module DAG",
     "either the dependency is wrong (remove the include, or route it through a declared "
     "gateway file) or the architecture changed on purpose (add the edge to the `modules` "
     "map in audit/rules.json with a PR explaining why)"},
    {"RTLB-A002", Severity::kError,
     "independent-checker source reaches outside its declared module set",
     "src/verify/'s checker files re-judge certificates from the model alone; keep their "
     "includes within the rule's allowed_modules list, or move result-dependent code into "
     "a declared gateway file (emit.*)"},
    {"RTLB-A101", Severity::kError,
     "iteration over an unordered container in a determinism-critical module",
     "unordered_map/unordered_set iteration order varies across libc++/libstdc++ and even "
     "process runs; iterate a sorted view, or switch to std::map/std::set/a sorted vector"},
    {"RTLB-A102", Severity::kError,
     "wall-clock or randomness source in a determinism-critical module",
     "core/, fleet/ and verify/ must be bit-reproducible; clocks belong in src/obs/, "
     "seeded randomness in src/common/random.hpp (split_seed)"},
    {"RTLB-A103", Severity::kError,
     "ordered container keyed on a pointer type",
     "pointer order is allocation order, which varies run to run; key on a task/resource "
     "id or another value type instead"},
    {"RTLB-A104", Severity::kError,
     "floating-point type in exact bound arithmetic",
     "the listed files implement the I128/ceil_div exactness contract (src/common/ratio.hpp); "
     "use Time/__int128 arithmetic, or move approximate code out of the listed files"},
    {"RTLB-A201", Severity::kError,
     "by-reference capture written without a per-index slot in a ThreadPool body",
     "parallel_for gives no ordering guarantee; write each index's result into its own "
     "slot (results[i] = ...) and merge the slots in index order afterwards "
     "(src/common/thread_pool.hpp's determinism contract)"},
    {"RTLB-A301", Severity::kError,
     "raw multiplication on Time-typed operands in a listed hot file",
     "widen through __int128 first (static_cast<__int128>(a) * b, the src/common/ratio.hpp "
     "idiom) so near-kTimeMax products cannot overflow"},
    {"RTLB-A302", Severity::kError,
     "raw += accumulation into a Time-typed value in a listed hot file",
     "accumulate with __builtin_add_overflow (the demand-scan idiom) or prove the sum "
     "bounded and carry the proof in an `audit-ok` justification"},
}};

}  // namespace

std::span<const DiagInfo> all_audit_info() { return kRegistry; }

const DiagInfo* audit_info(std::string_view code) {
  for (const DiagInfo& info : kRegistry) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

}  // namespace rtlb
