#include "src/audit/rules.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace rtlb::audit {

namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Tokens& t, std::size_t i, const char* text = nullptr) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent &&
         (text == nullptr || t[i].text == text);
}

bool is_punct(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == Token::Kind::kPunct && t[i].text == text;
}

/// tokens[open] == "<": index one past the matching ">". Bails out (returns
/// open + 1) when the stream ends or a ";"/"{" proves this "<" was a
/// comparison, not template arguments.
std::size_t skip_template_args(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kPunct) continue;
    if (t[i].text == "<") ++depth;
    else if (t[i].text == ">" && --depth == 0) return i + 1;
    else if (t[i].text == ">>" && (depth -= 2) <= 0) return i + 1;
    else if (t[i].text == ";" || t[i].text == "{") break;
  }
  return open + 1;
}

/// tokens[open] is an opening bracket: index of the matching closer, or
/// t.size() when unbalanced.
std::size_t match_forward(const Tokens& t, std::size_t open, const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t, i, o)) ++depth;
    else if (is_punct(t, i, c) && --depth == 0) return i;
  }
  return t.size();
}

/// tokens[close] is a closing bracket: index of the matching opener, or
/// npos when unbalanced.
std::size_t match_backward(const Tokens& t, std::size_t close, const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (is_punct(t, i, c)) ++depth;
    else if (is_punct(t, i, o) && --depth == 0) return i;
    if (i == 0) break;
  }
  return static_cast<std::size_t>(-1);
}

/// The statement enclosing token i: (begin, end] token range bounded by the
/// previous ";"/"{"/"}" and the next ";"/"{"/"}" -- coarse, but exactly what
/// the __int128-exemption scan needs.
std::pair<std::size_t, std::size_t> statement_range(const Tokens& t, std::size_t i) {
  std::size_t begin = 0;
  for (std::size_t k = i; k-- > 0;) {
    if (t[k].kind == Token::Kind::kPunct &&
        (t[k].text == ";" || t[k].text == "{" || t[k].text == "}")) {
      begin = k + 1;
      break;
    }
  }
  std::size_t end = t.size();
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind == Token::Kind::kPunct &&
        (t[k].text == ";" || t[k].text == "{" || t[k].text == "}")) {
      end = k;
      break;
    }
  }
  return {begin, end};
}

bool statement_contains(const Tokens& t, std::size_t i, const char* ident) {
  auto [begin, end] = statement_range(t, i);
  for (std::size_t k = begin; k < end; ++k) {
    if (is_ident(t, k, ident)) return true;
  }
  return false;
}

/// Collect names declared with scalar type `type_name` anywhere in the file:
/// `Time x`, `const Time x, y`, parameters `(Time a, Time b)`. Function
/// declarations (`Time f(...)`) and pointers/references are excluded -- the
/// numeric rules reason about by-value scalars only.
std::set<std::string> scalar_decls(const Tokens& t, const char* type_name) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t, i, type_name)) continue;
    if (i > 0 && is_punct(t, i - 1, "::")) continue;  // qualified: not our type
    std::size_t j = i + 1;
    if (is_punct(t, j, "&") || is_punct(t, j, "*")) continue;
    while (is_ident(t, j)) {
      const std::string& name = t[j].text;
      const std::size_t after = j + 1;
      if (is_punct(t, after, "(")) break;  // function named `name` returning Time
      if (is_punct(t, after, "=") || is_punct(t, after, ";") || is_punct(t, after, ",") ||
          is_punct(t, after, ")") || is_punct(t, after, "{") || is_punct(t, after, ":")) {
        names.insert(name);
      } else {
        break;
      }
      // Multi-declarator: `Time a = 0, b = 0;` -- skip to the next "," at
      // this statement level and keep collecting.
      std::size_t k = after;
      int depth = 0;
      while (k < t.size()) {
        if (t[k].kind == Token::Kind::kPunct) {
          const std::string& p = t[k].text;
          if (p == "(" || p == "[" || p == "{") ++depth;
          else if (p == ")" || p == "]" || p == "}") {
            if (depth == 0) break;
            --depth;
          } else if (depth == 0 && (p == ";" || p == ")")) {
            break;
          } else if (depth == 0 && p == ",") {
            break;
          }
        }
        ++k;
      }
      if (!is_punct(t, k, ",")) break;
      j = k + 1;
    }
  }
  return names;
}

/// Collect names declared with an unordered container type: the identifier
/// following `unordered_map<...>` / `unordered_set<...>` (skipping &, *,
/// const). `::iterator`-style member access after the template args is not
/// a declaration and is skipped.
std::set<std::string> unordered_decls(const Tokens& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i) || (t[i].text != "unordered_map" && t[i].text != "unordered_set")) {
      continue;
    }
    if (!is_punct(t, i + 1, "<")) continue;
    std::size_t j = skip_template_args(t, i + 1);
    while (is_punct(t, j, "&") || is_punct(t, j, "*") || is_ident(t, j, "const")) ++j;
    if (is_punct(t, j, "::")) continue;
    if (is_ident(t, j)) names.insert(t[j].text);
  }
  return names;
}

// ---------------------------------------------------------------------------
// A0xx layering

void check_layering(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (src.module.empty()) return;
  const auto deps = rule.modules_dag.find(src.module);
  auto gateway_allows = [&](const std::string& to) {
    return std::any_of(rule.gateways.begin(), rule.gateways.end(), [&](const Gateway& g) {
      return g.file == src.path && g.to == to;
    });
  };
  for (const IncludeEdge& e : src.includes) {
    if (e.target_module.empty() || e.target_module == src.module) continue;
    if (deps == rule.modules_dag.end()) {
      Diagnostic d = sink.make(
          rule.code.c_str(), "include of \"" + e.target + "\"",
          "module '" + src.module + "' is not declared in the audit/rules.json module DAG");
      d.line = e.line;
      sink.emit(std::move(d));
      continue;
    }
    if (deps->second.count(e.target_module) > 0) continue;
    if (gateway_allows(e.target_module)) continue;
    Diagnostic d = sink.make(
        rule.code.c_str(), "include of \"" + e.target + "\"",
        "edge " + src.module + " -> " + e.target_module +
            " is not in the declared module DAG (and this file is not a listed gateway)");
    d.line = e.line;
    sink.emit(std::move(d));
  }
}

void check_restricted_includes(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.files.count(src.path) == 0) return;
  for (const IncludeEdge& e : src.includes) {
    if (e.target_module.empty()) continue;
    if (rule.allowed_modules.count(e.target_module) > 0) continue;
    Diagnostic d = sink.make(
        rule.code.c_str(), "include of \"" + e.target + "\"",
        "this file is part of the independent-checker surface and may only include from "
        "the declared module set");
    d.line = e.line;
    sink.emit(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// A1xx determinism

void check_unordered_iteration(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.modules.count(src.module) == 0) return;
  const Tokens& t = src.tokens;
  const std::set<std::string> unordered = unordered_decls(t);
  if (unordered.empty()) return;

  auto flag = [&](std::size_t at, const std::string& name, const char* how) {
    Diagnostic d = sink.make(rule.code.c_str(), "'" + name + "'",
                             std::string(how) + " an unordered container; its order is "
                             "not deterministic across runs or standard libraries");
    d.line = t[at].line;
    sink.emit(std::move(d));
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose sequence expression's final identifier is unordered.
    if (is_ident(t, i, "for") && is_punct(t, i + 1, "(")) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      std::size_t colon = t.size();
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (is_punct(t, k, "(") || is_punct(t, k, "[")) ++depth;
        else if (is_punct(t, k, ")") || is_punct(t, k, "]")) --depth;
        else if (depth == 1 && is_punct(t, k, ":")) {
          colon = k;
          break;
        }
      }
      if (colon < close) {
        std::string last_ident;
        std::size_t at = colon;
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (t[k].kind == Token::Kind::kIdent) {
            last_ident = t[k].text;
            at = k;
          }
        }
        if (unordered.count(last_ident) > 0) flag(at, last_ident, "range-for over");
      }
    }
    // Explicit iterator walk: name.begin() / name.cbegin().
    if (is_punct(t, i, ".") && (is_ident(t, i + 1, "begin") || is_ident(t, i + 1, "cbegin")) &&
        is_punct(t, i + 2, "(") && i > 0 && t[i - 1].kind == Token::Kind::kIdent &&
        unordered.count(t[i - 1].text) > 0) {
      flag(i - 1, t[i - 1].text, "iterator walk over");
    }
  }
}

void check_banned_calls(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.modules.count(src.module) == 0) return;
  // Identifiers that are nondeterminism sources by NAME (types/clock tags):
  // any appearance counts. The rest are only findings as direct calls.
  static const std::set<std::string> kTypeLike{"random_device", "system_clock",
                                              "steady_clock", "high_resolution_clock",
                                              "mt19937", "mt19937_64", "default_random_engine"};
  const Tokens& t = src.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || rule.banned.count(t[i].text) == 0) continue;
    const bool type_like = kTypeLike.count(t[i].text) > 0;
    if (!type_like) {
      if (!is_punct(t, i + 1, "(")) continue;
      if (i > 0 && (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->"))) continue;
      if (i > 0 && is_punct(t, i - 1, "::") && !(i > 1 && is_ident(t, i - 2, "std"))) continue;
    }
    Diagnostic d = sink.make(rule.code.c_str(), "'" + t[i].text + "'",
                             "wall-clock/randomness source in a module whose results must be "
                             "bit-reproducible");
    d.line = t[i].line;
    sink.emit(std::move(d));
  }
}

void check_pointer_keys(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.modules.count(src.module) == 0) return;
  static const std::set<std::string> kContainers{"map", "set", "multimap", "multiset"};
  const Tokens& t = src.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || kContainers.count(t[i].text) == 0) continue;
    if (!is_punct(t, i + 1, "<")) continue;
    // `std::map<` or `map<` only; `my::map<` is someone else's type.
    if (i > 0 && is_punct(t, i - 1, "::") && !(i > 1 && is_ident(t, i - 2, "std"))) continue;
    // First template argument: up to the first "," at depth 1 (or the
    // closing ">").
    int depth = 0;
    bool pointer = false;
    std::size_t end = i + 1;
    for (std::size_t k = i + 1; k < t.size(); ++k) {
      if (t[k].kind != Token::Kind::kPunct) continue;
      const std::string& p = t[k].text;
      if (p == "<" || p == "(" || p == "[") ++depth;
      else if (p == ">" || p == ")" || p == "]") {
        if (--depth == 0) { end = k; break; }
      } else if (p == "," && depth == 1) {
        end = k;
        break;
      } else if (p == "*" && depth == 1) {
        pointer = true;
      } else if (p == ";" || p == "{") {
        break;  // comparison, not a template
      }
    }
    if (!pointer) continue;
    Diagnostic d = sink.make(rule.code.c_str(), "'" + t[i].text + "'",
                             "ordered container keyed on a pointer: iteration order becomes "
                             "allocation order, which varies run to run");
    d.line = t[i].line;
    sink.emit(std::move(d));
    (void)end;
  }
}

void check_float_arithmetic(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.files.count(src.path) == 0) return;
  const Tokens& t = src.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i, "double") && !is_ident(t, i, "float")) continue;
    Diagnostic d = sink.make(rule.code.c_str(), "'" + t[i].text + "'",
                             "floating-point type in a file under the exact-arithmetic "
                             "(I128/ceil_div) contract");
    d.line = t[i].line;
    sink.emit(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// A2xx parallel-write discipline

/// Methods that mutate a standard container (racy when the receiver is
/// shared across parallel_for bodies).
const std::set<std::string>& mutator_methods() {
  static const std::set<std::string> kMethods{
      "push_back", "emplace_back", "pop_back", "push_front", "pop_front", "insert",
      "emplace",   "erase",        "clear",    "resize",     "assign",    "reserve",
      "push",      "pop",          "merge",    "swap"};
  return kMethods;
}

const std::set<std::string>& assignment_ops() {
  static const std::set<std::string> kOps{"=",  "+=", "-=", "*=",  "/=",  "%=",
                                          "&=", "|=", "^=", "<<=", ">>="};
  return kOps;
}

struct Lambda {
  bool by_ref_all = false;
  std::set<std::string> named_refs;
  std::set<std::string> params;
  std::size_t body_begin = 0;  // index of "{"
  std::size_t body_end = 0;    // index of matching "}"
  bool valid = false;
};

Lambda parse_lambda(const Tokens& t, std::size_t open_bracket) {
  Lambda lam;
  const std::size_t cap_end = match_forward(t, open_bracket, "[", "]");
  if (cap_end >= t.size()) return lam;
  for (std::size_t k = open_bracket + 1; k < cap_end; ++k) {
    if (is_punct(t, k, "&")) {
      if (is_ident(t, k + 1) && k + 1 < cap_end) {
        lam.named_refs.insert(t[k + 1].text);
        ++k;
      } else {
        lam.by_ref_all = true;
      }
    }
  }
  std::size_t i = cap_end + 1;
  if (is_punct(t, i, "(")) {
    const std::size_t close = match_forward(t, i, "(", ")");
    int depth = 0;
    for (std::size_t k = i; k < close; ++k) {
      if (is_punct(t, k, "(") || is_punct(t, k, "<") || is_punct(t, k, "[")) ++depth;
      else if (is_punct(t, k, ")") || is_punct(t, k, ">") || is_punct(t, k, "]")) --depth;
      else if (depth == 1 && (is_punct(t, k, ",") || k + 1 == close)) {
        // param name: the identifier immediately before this separator
        const std::size_t name_at = is_punct(t, k, ",") ? k - 1 : k;
        if (is_ident(t, name_at)) lam.params.insert(t[name_at].text);
      }
    }
    if (close + 1 < t.size() && is_ident(t, close)) {
      // k + 1 == close handled the last param above; nothing to do here.
    }
    // Final parameter when the list does not end in ",": the ident before ")".
    if (close > i + 1 && is_ident(t, close - 1)) lam.params.insert(t[close - 1].text);
    i = close + 1;
  }
  // Skip specifiers (mutable, noexcept, -> ret) up to the body.
  while (i < t.size() && !is_punct(t, i, "{")) ++i;
  if (i >= t.size()) return lam;
  lam.body_begin = i;
  lam.body_end = match_forward(t, i, "{", "}");
  if (lam.body_end >= t.size()) return lam;
  lam.valid = true;
  return lam;
}

/// Names declared inside [begin, end): `Type name`, `Type& name`,
/// `std::vector<T> name`, `auto [a, b]`, multi-declarators.
std::set<std::string> local_decls(const Tokens& t, std::size_t begin, std::size_t end) {
  static const std::set<std::string> kNotAType{"return", "else",   "new",   "delete",
                                              "throw",  "goto",   "case",  "break",
                                              "continue", "if",   "while", "do",
                                              "switch", "sizeof", "co_return"};
  std::set<std::string> names;
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind != Token::Kind::kIdent || kNotAType.count(t[i].text) > 0) continue;
    // Structured binding: auto [a, b] = ...
    if (t[i].text == "auto") {
      std::size_t j = i + 1;
      while (is_punct(t, j, "&") || is_punct(t, j, "*") || is_ident(t, j, "const")) ++j;
      if (is_punct(t, j, "[")) {
        const std::size_t close = match_forward(t, j, "[", "]");
        for (std::size_t k = j + 1; k < close && k < end; ++k) {
          if (is_ident(t, k)) names.insert(t[k].text);
        }
        i = close;
        continue;
      }
    }
    // Type head: ident (possibly std::-qualified with template args).
    std::size_t j = i + 1;
    while (is_punct(t, j, "::") && is_ident(t, j + 1)) j += 2;
    if (is_punct(t, j, "<")) j = skip_template_args(t, j);
    while (is_punct(t, j, "&") || is_punct(t, j, "*") || is_ident(t, j, "const")) {
      if (is_ident(t, j, "const")) { ++j; continue; }
      ++j;
    }
    if (!is_ident(t, j) || j >= end) continue;
    const std::size_t after = j + 1;
    if (is_punct(t, after, "=") || is_punct(t, after, ";") || is_punct(t, after, ":") ||
        is_punct(t, after, "{") || is_punct(t, after, ",") || is_punct(t, after, ")")) {
      names.insert(t[j].text);
    }
  }
  return names;
}

/// Walk the postfix chain ending at token `last` (inclusive) backwards:
/// idents, "."/"->"/"::" links and "[...]" groups. Returns the base ident
/// and whether any subscript appeared; base empty when no chain.
struct Chain {
  std::string base;
  bool has_subscript = false;
  std::size_t begin = 0;
};

Chain walk_back(const Tokens& t, std::size_t last) {
  Chain c;
  std::size_t i = last + 1;
  bool expect_name = true;  // next element (going left) must be ident or "]"
  while (i-- > 0) {
    if (expect_name && is_punct(t, i, "]")) {
      const std::size_t open = match_backward(t, i, "[", "]");
      if (open == static_cast<std::size_t>(-1)) break;
      c.has_subscript = true;
      i = open;
      expect_name = true;
      continue;
    }
    if (expect_name && t[i].kind == Token::Kind::kIdent) {
      c.base = t[i].text;
      c.begin = i;
      expect_name = false;
      continue;
    }
    if (!expect_name &&
        (is_punct(t, i, ".") || is_punct(t, i, "->") || is_punct(t, i, "::"))) {
      expect_name = true;
      continue;
    }
    break;
  }
  if (expect_name) c.base.clear();  // dangling link; not a chain
  return c;
}

void check_parallel_writes(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  const Tokens& t = src.tokens;

  auto analyze_body = [&](const Lambda& lam, const std::string& where) {
    const std::set<std::string> locals = local_decls(t, lam.body_begin + 1, lam.body_end);
    auto shared = [&](const std::string& name) {
      if (name.empty() || locals.count(name) > 0 || lam.params.count(name) > 0) return false;
      if (lam.by_ref_all) return true;
      return lam.named_refs.count(name) > 0;
    };
    auto flag = [&](std::size_t at, const std::string& name, const std::string& how) {
      Diagnostic d = sink.make(
          rule.code.c_str(), "'" + name + "'",
          how + " a by-reference capture that is shared across " + where +
              " bodies without a per-index slot (no subscript on the written object)");
      d.line = t[at].line;
      sink.emit(std::move(d));
    };

    for (std::size_t k = lam.body_begin + 1; k < lam.body_end; ++k) {
      if (t[k].kind != Token::Kind::kPunct) continue;
      const std::string& op = t[k].text;
      if (assignment_ops().count(op) > 0) {
        if (k == lam.body_begin + 1) continue;
        const Chain c = walk_back(t, k - 1);
        if (!c.has_subscript && shared(c.base)) flag(k, c.base, "assignment ('" + op + "') to");
      } else if (op == "++" || op == "--") {
        // Postfix: chain before the op; prefix: ident after it.
        Chain c = walk_back(t, k - 1);
        if (c.base.empty() && is_ident(t, k + 1)) {
          c.base = t[k + 1].text;
          c.has_subscript = is_punct(t, k + 2, "[");
        }
        if (!c.has_subscript && shared(c.base)) flag(k, c.base, "increment of");
      } else if (op == "." && is_ident(t, k + 1) &&
                 mutator_methods().count(t[k + 1].text) > 0 && is_punct(t, k + 2, "(")) {
        const Chain c = k > 0 ? walk_back(t, k - 1) : Chain{};
        if (!c.has_subscript && shared(c.base)) {
          flag(k + 1, c.base, "mutating call ('." + t[k + 1].text + "') on");
        }
      }
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::Kind::kIdent || rule.entry_points.count(t[i].text) == 0) continue;
    if (!is_punct(t, i + 1, "(")) continue;
    const std::size_t close = match_forward(t, i + 1, "(", ")");
    if (close >= t.size()) continue;
    // The callable is the LAST top-level argument.
    std::size_t arg_begin = i + 2;
    int depth = 0;
    for (std::size_t k = i + 1; k < close; ++k) {
      if (is_punct(t, k, "(") || is_punct(t, k, "[") || is_punct(t, k, "{")) ++depth;
      else if (is_punct(t, k, ")") || is_punct(t, k, "]") || is_punct(t, k, "}")) --depth;
      else if (depth == 1 && is_punct(t, k, ",")) arg_begin = k + 1;
    }
    if (arg_begin >= close) continue;
    Lambda lam;
    if (is_punct(t, arg_begin, "[")) {
      lam = parse_lambda(t, arg_begin);
    } else if (is_ident(t, arg_begin) && arg_begin + 1 == close) {
      // An identifier: resolve `name = [...](...){...}` defined earlier in
      // the file (the run_one idiom); the LAST definition before the call
      // wins. Unresolvable callables are a documented blind spot.
      const std::string& name = t[arg_begin].text;
      for (std::size_t k = arg_begin; k-- > 2;) {
        if (is_ident(t, k, name.c_str()) && is_punct(t, k + 1, "=") &&
            is_punct(t, k + 2, "[")) {
          lam = parse_lambda(t, k + 2);
          break;
        }
      }
    }
    if (lam.valid) analyze_body(lam, t[i].text);
  }
}

// ---------------------------------------------------------------------------
// A3xx numeric hygiene

void check_time_multiply(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.files.count(src.path) == 0) return;
  const Tokens& t = src.tokens;
  const std::set<std::string> times = scalar_decls(t, "Time");
  if (times.empty()) return;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (!is_punct(t, i, "*")) continue;
    // Binary multiply: something value-like on the left.
    const Token& prev = t[i - 1];
    const bool binary = prev.kind == Token::Kind::kIdent ||
                        prev.kind == Token::Kind::kNumber ||
                        (prev.kind == Token::Kind::kPunct &&
                         (prev.text == ")" || prev.text == "]"));
    if (!binary) continue;
    const bool lhs_time = prev.kind == Token::Kind::kIdent && times.count(prev.text) > 0;
    const bool rhs_time = is_ident(t, i + 1) && times.count(t[i + 1].text) > 0;
    if (!lhs_time && !rhs_time) continue;
    // Widened arithmetic is the sanctioned idiom; a cast anywhere in the
    // statement licenses the product (ratio.hpp / overflow-probe style).
    if (statement_contains(t, i, "__int128")) continue;
    const std::string name = lhs_time ? prev.text : t[i + 1].text;
    Diagnostic d = sink.make(rule.code.c_str(), "'" + name + "'",
                             "raw multiplication on a Time-typed operand without an "
                             "__int128 widening in the statement");
    d.line = t[i].line;
    sink.emit(std::move(d));
  }
}

void check_time_accumulate(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  if (rule.files.count(src.path) == 0) return;
  const Tokens& t = src.tokens;
  const std::set<std::string> times = scalar_decls(t, "Time");
  if (times.empty()) return;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!is_punct(t, i, "+=")) continue;
    const Token& prev = t[i - 1];
    if (prev.kind != Token::Kind::kIdent || times.count(prev.text) == 0) continue;
    Diagnostic d = sink.make(rule.code.c_str(), "'" + prev.text + "'",
                             "raw += accumulation into a Time-typed value; use "
                             "__builtin_add_overflow or carry a boundedness proof in an "
                             "audit-ok justification");
    d.line = t[i].line;
    sink.emit(std::move(d));
  }
}

}  // namespace

void run_rule(const Rule& rule, const SourceFile& src, DiagnosticSink& sink) {
  switch (rule.kind) {
    case RuleKind::kLayering: return check_layering(rule, src, sink);
    case RuleKind::kRestrictedIncludes: return check_restricted_includes(rule, src, sink);
    case RuleKind::kUnorderedIteration: return check_unordered_iteration(rule, src, sink);
    case RuleKind::kBannedCalls: return check_banned_calls(rule, src, sink);
    case RuleKind::kPointerKeys: return check_pointer_keys(rule, src, sink);
    case RuleKind::kFloatArithmetic: return check_float_arithmetic(rule, src, sink);
    case RuleKind::kParallelWrites: return check_parallel_writes(rule, src, sink);
    case RuleKind::kTimeMultiply: return check_time_multiply(rule, src, sink);
    case RuleKind::kTimeAccumulate: return check_time_accumulate(rule, src, sink);
  }
}

}  // namespace rtlb::audit
