// Registry of project-invariant audit codes (RTLB-Axxx).
//
// The audit subsystem (src/audit/, tools/rtlb_audit) checks the REPOSITORY'S
// OWN C++ SOURCES against the declarative rules manifest audit/rules.json:
// module layering, determinism discipline, parallel-write discipline, and
// numeric hygiene. It reuses the lint subsystem's Diagnostic/DiagnosticSink
// machinery, so audit codes behave exactly like lint codes (--explain,
// text/JSON output, baselines) but live in their OWN registry: the lint
// registry describes findings about problem instances, this one describes
// findings about the codebase.
//
// Code ranges (append-only, never renumbered):
//   RTLB-A0xx   layering (the #include graph vs the declared module DAG)
//   RTLB-A1xx   determinism (iteration order, clocks, randomness, floats)
//   RTLB-A2xx   concurrency (ThreadPool parallel-write discipline)
//   RTLB-A3xx   numeric hygiene (raw Time arithmetic in listed hot files)
#pragma once

#include <span>
#include <string_view>

#include "src/lint/diagnostic.hpp"

namespace rtlb {

/// All registered audit codes, in code order.
std::span<const DiagInfo> all_audit_info();

/// Lookup; nullptr for an unknown code.
const DiagInfo* audit_info(std::string_view code);

}  // namespace rtlb
