#include "src/audit/source.hpp"

#include <cctype>
#include <cstring>

namespace rtlb::audit {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-character punctuators, longest first for maximal munch. Only the
/// ones the rule matchers distinguish matter; anything else falls through to
/// single characters.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
};

/// Parse one `audit-ok: RTLB-Axxx reason...` directive out of a comment
/// body. Returns false when the comment is not a suppression.
bool parse_suppression(const std::string& comment, Suppression& out) {
  const std::size_t at = comment.find("audit-ok:");
  if (at == std::string::npos) return false;
  std::size_t i = at + std::strlen("audit-ok:");
  while (i < comment.size() && std::isspace(static_cast<unsigned char>(comment[i]))) ++i;
  std::size_t code_end = i;
  while (code_end < comment.size() &&
         !std::isspace(static_cast<unsigned char>(comment[code_end]))) {
    ++code_end;
  }
  out.code = comment.substr(i, code_end - i);
  if (out.code.rfind("RTLB-A", 0) != 0) return false;
  std::size_t r = code_end;
  while (r < comment.size() && std::isspace(static_cast<unsigned char>(comment[r]))) ++r;
  std::size_t r_end = comment.size();
  while (r_end > r && std::isspace(static_cast<unsigned char>(comment[r_end - 1]))) --r_end;
  out.reason = comment.substr(r, r_end - r);
  return true;
}

}  // namespace

std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

bool SourceFile::suppressed(const std::string& code, int line) const {
  for (int l : {line, line - 1}) {
    auto [lo, hi] = suppressions.equal_range(l);
    for (auto it = lo; it != hi; ++it) {
      if (it->second.code != code || it->second.reason.empty()) continue;
      if (l == line || it->second.alone_on_line) return true;
    }
  }
  return false;
}

SourceFile scan_source(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  out.module = module_of(out.path);

  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_code = false;  // any token seen on the current line yet

  auto record_comment = [&](const std::string& body, int comment_line, bool alone) {
    Suppression s;
    if (parse_suppression(body, s)) {
      s.alone_on_line = alone;
      out.suppressions.emplace(comment_line, s);
    }
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      line_has_code = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      record_comment(text.substr(start, i - start), line, /*alone=*/!line_has_code);
      continue;
    }
    // Block comment (may span lines; a suppression is anchored to the line
    // the comment STARTS on).
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      const bool alone = !line_has_code;
      const std::size_t start = i + 2;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      const std::size_t end = (i + 1 < n) ? i : n;
      record_comment(text.substr(start, end - start), start_line, alone);
      i = (i + 1 < n) ? i + 2 : n;
      // A block comment followed by code on the same line does not clear
      // line_has_code; it never set it.
      continue;
    }
    // Preprocessor directive: extract quoted project includes, skip the
    // rest of the line (no token soup from macros/conditions).
    if (c == '#' && !line_has_code) {
      const std::size_t eol = text.find('\n', i);
      const std::size_t end = eol == std::string::npos ? n : eol;
      const std::string directive = text.substr(i, end - i);
      if (directive.find("include") != std::string::npos) {
        const std::size_t q1 = directive.find('"');
        if (q1 != std::string::npos) {
          const std::size_t q2 = directive.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            IncludeEdge e;
            e.target = directive.substr(q1 + 1, q2 - q1 - 1);
            e.target_module = module_of(e.target);
            e.line = line;
            out.includes.push_back(e);
          }
        }
      }
      i = end;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(' && delim.size() <= 16) delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = text.find(closer, p);
      const std::size_t end = close == std::string::npos ? n : close + closer.size();
      out.tokens.push_back({Token::Kind::kString, "", line});
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      line_has_code = true;
      i = end;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      std::string body;
      while (p < n && text[p] != quote) {
        if (text[p] == '\\' && p + 1 < n) {
          body += text[p];
          body += text[p + 1];
          p += 2;
          continue;
        }
        if (text[p] == '\n') break;  // unterminated; stop at EOL
        body += text[p++];
      }
      out.tokens.push_back(
          {quote == '"' ? Token::Kind::kString : Token::Kind::kChar, body, line});
      line_has_code = true;
      i = (p < n && text[p] == quote) ? p + 1 : p;
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(text[p])) ++p;
      out.tokens.push_back({Token::Kind::kIdent, text.substr(i, p - i), line});
      line_has_code = true;
      i = p;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i;
      while (p < n && (ident_char(text[p]) || text[p] == '.' ||
                       ((text[p] == '+' || text[p] == '-') && p > i &&
                        (text[p - 1] == 'e' || text[p - 1] == 'E' ||
                         text[p - 1] == 'p' || text[p - 1] == 'P')))) {
        ++p;
      }
      out.tokens.push_back({Token::Kind::kNumber, text.substr(i, p - i), line});
      line_has_code = true;
      i = p;
      continue;
    }
    // Punctuation, maximal munch.
    std::string punct(1, c);
    for (const char* m : kPuncts) {
      const std::size_t len = std::strlen(m);
      if (text.compare(i, len, m) == 0) {
        punct = m;
        break;
      }
    }
    out.tokens.push_back({Token::Kind::kPunct, punct, line});
    line_has_code = true;
    i += punct.size();
  }
  return out;
}

}  // namespace rtlb::audit
