#include "src/audit/audit.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/audit/registry.hpp"
#include "src/audit/rules.hpp"
#include "src/audit/source.hpp"
#include "src/common/types.hpp"

namespace rtlb::audit {

namespace fs = std::filesystem;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("audit: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool is_source_name(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// Audit one file: scan, run every rule, filter honoured suppressions.
void audit_file(const Manifest& manifest, const std::string& root,
                const std::string& rel, Result& out) {
  const std::string text = read_file((fs::path(root) / rel).string());
  const SourceFile src = scan_source(rel, text);
  ++out.files_scanned;

  LintResult batch;
  DiagnosticSink sink(batch, LintOptions{}, all_audit_info());
  for (const Rule& rule : manifest.rules) run_rule(rule, src, sink);

  for (Diagnostic& d : batch.diagnostics) {
    if (src.suppressed(d.code, d.line)) {
      ++out.suppressed;
      continue;
    }
    out.findings.push_back({rel, std::move(d), /*baselined=*/false});
  }
}

}  // namespace

int Result::new_findings() const {
  int n = 0;
  for (const Finding& f : findings) n += f.baselined ? 0 : 1;
  return n;
}

int Result::baselined_count() const {
  return static_cast<int>(findings.size()) - new_findings();
}

std::vector<std::string> list_sources(const Manifest& manifest, const std::string& root) {
  std::vector<std::string> files;
  for (const std::string& dir : manifest.roots) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;  // an absent root scans as empty, not as a throw
    for (fs::recursive_directory_iterator it(base, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (!it->is_regular_file() || !is_source_name(it->path())) continue;
      files.push_back(fs::path(it->path()).lexically_relative(root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

Result run_audit(const Manifest& manifest, const std::string& root,
                 const std::vector<std::string>& files) {
  Result out;
  const std::vector<std::string> targets = files.empty() ? list_sources(manifest, root) : files;
  for (const std::string& rel : targets) audit_file(manifest, root, rel, out);
  std::stable_sort(out.findings.begin(), out.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.diag.line != b.diag.line) return a.diag.line < b.diag.line;
                     return a.diag.code < b.diag.code;
                   });
  return out;
}

std::string baseline_key(const Finding& f) {
  return f.file + "\t" + f.diag.code + "\t" + f.diag.subject;
}

void apply_baseline(Result& result, const std::set<std::string>& baseline) {
  for (Finding& f : result.findings) {
    f.baselined = baseline.count(baseline_key(f)) > 0;
  }
}

std::string format_audit_text(const Result& result, bool quiet_hints) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    Diagnostic d = f.diag;
    if (quiet_hints) d.hint.clear();
    if (f.baselined) {
      d.message += " (baselined)";
      d.hint.clear();
    }
    out << format_diagnostic(d, f.file) << "\n";
  }
  out << result.files_scanned << " file(s), " << result.new_findings()
      << " finding(s)";
  if (result.baselined_count() > 0) out << ", " << result.baselined_count() << " baselined";
  if (result.suppressed > 0) out << ", " << result.suppressed << " suppressed";
  out << "\n";
  return out.str();
}

Json audit_json(const Result& result) {
  int errors = 0;
  int warnings = 0;
  int notes = 0;
  Json findings = Json::array();
  for (const Finding& f : result.findings) {
    if (!f.baselined) {
      switch (f.diag.severity) {
        case Severity::kError: ++errors; break;
        case Severity::kWarning: ++warnings; break;
        case Severity::kNote: ++notes; break;
      }
    }
    Json entry = Json::object();
    entry.set("file", f.file)
        .set("line", f.diag.line)
        .set("code", f.diag.code)
        .set("severity", severity_name(f.diag.severity))
        .set("subject", f.diag.subject)
        .set("message", f.diag.message)
        .set("hint", f.diag.hint)
        .set("baselined", f.baselined);
    findings.push(std::move(entry));
  }
  Json root = Json::object();
  root.set("files_scanned", static_cast<std::int64_t>(result.files_scanned))
      .set("errors", static_cast<std::int64_t>(errors))
      .set("warnings", static_cast<std::int64_t>(warnings))
      .set("notes", static_cast<std::int64_t>(notes))
      .set("suppressed", static_cast<std::int64_t>(result.suppressed))
      .set("baselined", static_cast<std::int64_t>(result.baselined_count()))
      .set("findings", std::move(findings));
  return root;
}

}  // namespace rtlb::audit
