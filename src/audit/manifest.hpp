// The declarative rules manifest (audit/rules.json) -- the single source of
// truth for the project invariants rtlb_audit enforces: the module layering
// DAG (with named gateway exceptions), the determinism-critical module set,
// the parallel-write entry points, and the numeric-hygiene hot-file lists.
// docs/AUDIT.md documents the format; tests/test_audit.cpp proves every rule
// load-bearing (deleting any one loses a planted corpus finding).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace rtlb::audit {

enum class RuleKind {
  kLayering,            // A0xx: include graph vs declared module DAG
  kRestrictedIncludes,  // A0xx: listed files may only reach allowed modules
  kUnorderedIteration,  // A1xx: range-for / .begin() over unordered containers
  kBannedCalls,         // A1xx: clocks and randomness sources
  kPointerKeys,         // A1xx: map/set keyed on a pointer type
  kFloatArithmetic,     // A1xx: float/double in listed exact-arithmetic files
  kParallelWrites,      // A2xx: shared by-ref writes in ThreadPool bodies
  kTimeMultiply,        // A3xx: raw * on Time operands in listed files
  kTimeAccumulate,      // A3xx: raw += on Time lvalues in listed files
};

/// One named exception to a layering rule: `file` may include into module
/// `to` even though the declared DAG forbids it. Every gateway carries a
/// reason; an empty reason is a manifest error.
struct Gateway {
  std::string file;  // root-relative, e.g. "src/verify/emit.cpp"
  std::string to;    // target module
  std::string reason;
};

struct Rule {
  std::string code;  // registry code, e.g. "RTLB-A001"
  RuleKind kind;

  /// kLayering: module -> allowed direct dependency modules. Must be a DAG.
  std::map<std::string, std::set<std::string>> modules_dag;
  std::vector<Gateway> gateways;

  /// kRestrictedIncludes: the restricted file set and its allowed targets.
  std::set<std::string> files;  // also scopes kFloat/kTimeMultiply/kTimeAccumulate
  std::set<std::string> allowed_modules;

  /// kUnorderedIteration / kBannedCalls / kPointerKeys: module scope.
  std::set<std::string> modules;

  /// kBannedCalls: banned identifiers (calls and type names).
  std::set<std::string> banned;

  /// kParallelWrites: function names whose callable argument is analyzed.
  std::set<std::string> entry_points;
};

struct Manifest {
  std::vector<std::string> roots;  // directories to scan, root-relative
  std::vector<Rule> rules;
};

/// Parse a manifest. Throws ModelError on structural problems: unknown
/// keys/kinds, a code missing from the audit registry, a cyclic layering
/// DAG, a gateway without a reason.
Manifest parse_manifest(const Json& j);

/// Read and parse `path`. Throws ModelError (file unreadable / bad JSON /
/// bad manifest).
Manifest load_manifest_file(const std::string& path);

}  // namespace rtlb::audit
