#include "src/audit/manifest.hpp"

#include <fstream>
#include <functional>
#include <sstream>

#include "src/audit/registry.hpp"
#include "src/common/types.hpp"

namespace rtlb::audit {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw ModelError("audit manifest: " + what);
}

std::vector<std::string> string_list(const Json& j, const std::string& ctx) {
  if (!j.is_array()) bad(ctx + " must be an array of strings");
  std::vector<std::string> out;
  for (std::size_t i = 0; i < j.size(); ++i) {
    if (!j.at(i).is_string()) bad(ctx + " must be an array of strings");
    out.push_back(j.at(i).as_string());
  }
  return out;
}

std::set<std::string> string_set(const Json& j, const std::string& ctx) {
  std::set<std::string> out;
  for (std::string& s : string_list(j, ctx)) out.insert(std::move(s));
  return out;
}

RuleKind kind_of(const std::string& name, const std::string& ctx) {
  if (name == "layering") return RuleKind::kLayering;
  if (name == "restricted-includes") return RuleKind::kRestrictedIncludes;
  if (name == "unordered-iteration") return RuleKind::kUnorderedIteration;
  if (name == "banned-calls") return RuleKind::kBannedCalls;
  if (name == "pointer-keyed-ordering") return RuleKind::kPointerKeys;
  if (name == "float-in-bound-arithmetic") return RuleKind::kFloatArithmetic;
  if (name == "parallel-capture-write") return RuleKind::kParallelWrites;
  if (name == "raw-time-multiply") return RuleKind::kTimeMultiply;
  if (name == "raw-time-accumulate") return RuleKind::kTimeAccumulate;
  bad(ctx + ": unknown rule kind '" + name + "'");
}

/// The declared layering graph must be acyclic -- a cycle would make
/// "allowed" meaningless. Plain DFS three-colouring.
void check_dag(const std::map<std::string, std::set<std::string>>& dag,
               const std::string& ctx) {
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::function<void(const std::string&)> visit = [&](const std::string& m) {
    colour[m] = 1;
    auto it = dag.find(m);
    if (it != dag.end()) {
      for (const std::string& dep : it->second) {
        if (dag.find(dep) == dag.end()) {
          bad(ctx + ": module '" + m + "' depends on undeclared module '" + dep + "'");
        }
        if (colour[dep] == 1) bad(ctx + ": declared module graph has a cycle through '" + dep + "'");
        if (colour[dep] == 0) visit(dep);
      }
    }
    colour[m] = 2;
  };
  for (const auto& [m, deps] : dag) {
    if (colour[m] == 0) visit(m);
  }
}

Rule parse_rule(const Json& j) {
  if (!j.is_object()) bad("each rule must be an object");
  const Json* code = j.find("code");
  if (code == nullptr || !code->is_string()) bad("rule missing string 'code'");
  Rule rule;
  rule.code = code->as_string();
  const std::string ctx = "rule " + rule.code;
  if (audit_info(rule.code) == nullptr) {
    bad(ctx + ": code is not in the audit registry (src/audit/registry.cpp)");
  }
  const Json* kind = j.find("kind");
  if (kind == nullptr || !kind->is_string()) bad(ctx + ": missing string 'kind'");
  rule.kind = kind_of(kind->as_string(), ctx);

  static const std::set<std::string> kKnownKeys{
      "code", "kind",  "modules",         "gateways", "files",
      "allowed_modules", "banned", "entry_points", "contract"};
  for (std::size_t i = 0; i < j.size(); ++i) {
    if (kKnownKeys.count(j.member(i).first) == 0) {
      bad(ctx + ": unknown key '" + j.member(i).first + "'");
    }
  }

  if (const Json* files = j.find("files")) rule.files = string_set(*files, ctx + ".files");
  if (const Json* allowed = j.find("allowed_modules")) {
    rule.allowed_modules = string_set(*allowed, ctx + ".allowed_modules");
  }
  if (const Json* banned = j.find("banned")) rule.banned = string_set(*banned, ctx + ".banned");
  if (const Json* eps = j.find("entry_points")) {
    rule.entry_points = string_set(*eps, ctx + ".entry_points");
  }

  if (const Json* modules = j.find("modules")) {
    if (rule.kind == RuleKind::kLayering) {
      if (!modules->is_object()) bad(ctx + ".modules must map module -> [deps]");
      for (std::size_t i = 0; i < modules->size(); ++i) {
        const auto& [name, deps] = modules->member(i);
        rule.modules_dag[name] = string_set(deps, ctx + ".modules." + name);
      }
      check_dag(rule.modules_dag, ctx);
    } else {
      rule.modules = string_set(*modules, ctx + ".modules");
    }
  }

  if (const Json* gws = j.find("gateways")) {
    if (!gws->is_array()) bad(ctx + ".gateways must be an array");
    for (std::size_t i = 0; i < gws->size(); ++i) {
      const Json& g = gws->at(i);
      const Json* file = g.find("file");
      const Json* to = g.find("to");
      const Json* reason = g.find("reason");
      if (file == nullptr || !file->is_string() || to == nullptr || !to->is_string()) {
        bad(ctx + ".gateways entries need string 'file' and 'to'");
      }
      if (reason == nullptr || !reason->is_string() || reason->as_string().empty()) {
        bad(ctx + ".gateways: gateway " + file->as_string() +
            " -> " + to->as_string() + " needs a non-empty 'reason'");
      }
      rule.gateways.push_back({file->as_string(), to->as_string(), reason->as_string()});
    }
  }

  switch (rule.kind) {
    case RuleKind::kLayering:
      if (rule.modules_dag.empty()) bad(ctx + ": layering rule needs a 'modules' map");
      break;
    case RuleKind::kRestrictedIncludes:
      if (rule.files.empty() || rule.allowed_modules.empty()) {
        bad(ctx + ": restricted-includes rule needs 'files' and 'allowed_modules'");
      }
      break;
    case RuleKind::kBannedCalls:
      if (rule.banned.empty()) bad(ctx + ": banned-calls rule needs 'banned'");
      [[fallthrough]];
    case RuleKind::kUnorderedIteration:
    case RuleKind::kPointerKeys:
      if (rule.modules.empty()) bad(ctx + ": rule needs a 'modules' list");
      break;
    case RuleKind::kFloatArithmetic:
    case RuleKind::kTimeMultiply:
    case RuleKind::kTimeAccumulate:
      if (rule.files.empty()) bad(ctx + ": rule needs a 'files' list");
      break;
    case RuleKind::kParallelWrites:
      if (rule.entry_points.empty()) bad(ctx + ": rule needs 'entry_points'");
      break;
  }
  return rule;
}

}  // namespace

Manifest parse_manifest(const Json& j) {
  if (!j.is_object()) bad("top level must be an object");
  const Json* version = j.find("version");
  if (version == nullptr || !version->is_int() || version->as_int() != 1) {
    bad("missing or unsupported 'version' (expected 1)");
  }
  Manifest m;
  if (const Json* roots = j.find("roots")) {
    m.roots = string_list(*roots, "roots");
  }
  if (m.roots.empty()) m.roots.push_back("src");
  const Json* rules = j.find("rules");
  if (rules == nullptr || !rules->is_array() || rules->size() == 0) {
    bad("missing non-empty 'rules' array");
  }
  std::set<std::string> seen;
  for (std::size_t i = 0; i < rules->size(); ++i) {
    Rule r = parse_rule(rules->at(i));
    if (!seen.insert(r.code).second) bad("duplicate rule code " + r.code);
    m.rules.push_back(std::move(r));
  }
  return m;
}

Manifest load_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ModelError("audit manifest: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_manifest(Json::parse(buf.str()));
  } catch (const JsonParseError& e) {
    throw ModelError("audit manifest: " + path + ": " + e.what());
  }
}

}  // namespace rtlb::audit
