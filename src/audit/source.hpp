// A lightweight C++ source scanner for the audit subsystem: comments and
// string/character literals are stripped into a flat token stream with line
// numbers, quoted project includes are extracted, and `audit-ok`
// suppression comments are recorded.
//
// This is deliberately NOT a compiler front end (no preprocessing, no name
// lookup, no types beyond what a file declares textually). The audit rules
// are pattern matchers over this stream, tuned so that every violation they
// CAN see is reported at its exact file:line and the patterns they cannot
// see through (writes hidden behind function calls, types declared in other
// headers) are documented limitations in docs/AUDIT.md rather than silent
// false positives.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace rtlb::audit {

struct Token {
  enum class Kind {
    kIdent,    // identifiers and keywords
    kNumber,   // numeric literals (value not interpreted)
    kPunct,    // operators/punctuation, maximal-munch ("+=", "::", ...)
    kString,   // string literal (text excludes quotes; escapes kept raw)
    kChar,     // character literal
  };
  Kind kind;
  std::string text;
  int line = 0;  // 1-based
};

/// One `#include "src/..."` directive. Only quoted project includes are
/// recorded -- system headers carry no layering information.
struct IncludeEdge {
  std::string target;         // e.g. "src/core/analysis.hpp"
  std::string target_module;  // e.g. "core"
  int line = 0;
};

/// One `audit-ok: RTLB-Axxx <reason>` comment. A suppression with an EMPTY
/// reason is recorded but never honoured (the driver reports the finding
/// anyway): justifications are mandatory, same as audit.baseline comments.
struct Suppression {
  std::string code;
  std::string reason;
  bool alone_on_line = false;  // comment is the whole line -> covers line+1
};

struct SourceFile {
  std::string path;    // root-relative, '/'-separated (e.g. "src/core/x.cpp")
  std::string module;  // second path component under src/ ("" otherwise)
  std::vector<Token> tokens;
  std::vector<IncludeEdge> includes;
  std::multimap<int, Suppression> suppressions;  // keyed by comment line

  /// True when a finding for `code` at `line` is covered by an honoured
  /// suppression (same line, or a whole-line comment on the line above).
  bool suppressed(const std::string& code, int line) const;
};

/// Tokenize `text` (the contents of `path`). Never throws on malformed
/// input: an unterminated literal or comment simply ends the stream, which
/// at worst loses findings in dead text, never invents them.
SourceFile scan_source(std::string path, const std::string& text);

/// "src/core/x.cpp" -> "core"; "" when the path is not of that shape.
std::string module_of(const std::string& path);

}  // namespace rtlb::audit
