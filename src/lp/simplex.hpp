// Dense two-phase primal simplex.
//
// This is the substrate for the Section-7 dedicated-model cost bound: the
// LP relaxation is solved here, and src/lp/ilp.hpp adds branch-and-bound on
// top for the integer program. Written for clarity and robustness at the
// problem sizes of this library (tens of variables/constraints): tableau
// form, Bland's anti-cycling rule, explicit artificial variables.
#pragma once

#include <cstdint>
#include <vector>

namespace rtlb {

struct LinearProgram {
  enum class Sense { Minimize, Maximize };
  enum class Relation { LessEq, GreaterEq, Equal };

  struct Constraint {
    std::vector<double> coeffs;  // one per variable; missing tail = 0
    Relation rel = Relation::LessEq;
    double rhs = 0;
  };

  Sense sense = Sense::Minimize;
  std::vector<double> objective;  // one per variable
  std::vector<Constraint> constraints;
  // All variables are implicitly >= 0.

  std::size_t num_vars() const { return objective.size(); }

  /// Convenience builders.
  void add_constraint(std::vector<double> coeffs, Relation rel, double rhs);
};

struct LpResult {
  enum class Status { Optimal, Infeasible, Unbounded };
  Status status = Status::Infeasible;
  double objective = 0;
  std::vector<double> x;
};

/// Solve the LP. Deterministic (Bland's rule) and exact up to the 1e-9
/// pivoting tolerance.
LpResult solve_lp(const LinearProgram& lp);

}  // namespace rtlb
