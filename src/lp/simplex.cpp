#include "src/lp/simplex.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/types.hpp"

namespace rtlb {

void LinearProgram::add_constraint(std::vector<double> coeffs, Relation rel, double rhs) {
  constraints.push_back(Constraint{std::move(coeffs), rel, rhs});
}

namespace {

constexpr double kEps = 1e-9;

/// Simplex tableau over the augmented variable set
/// [structural | slack/surplus | artificial], with an objective row.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows * (cols + 1), 0.0), obj_(cols + 1, 0.0), basis_(rows) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * (cols_ + 1) + c]; }
  double at(std::size_t r, std::size_t c) const { return a_[r * (cols_ + 1) + c]; }
  double& rhs(std::size_t r) { return a_[r * (cols_ + 1) + cols_]; }
  double rhs(std::size_t r) const { return a_[r * (cols_ + 1) + cols_]; }

  double& obj(std::size_t c) { return obj_[c]; }
  double obj_value() const { return -obj_[cols_]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::vector<std::size_t>& basis() { return basis_; }
  const std::vector<std::size_t>& basis() const { return basis_; }

  void pivot(std::size_t pr, std::size_t pc) {
    const double p = at(pr, pc);
    RTLB_CHECK(std::abs(p) > kEps, "pivot on (near-)zero element");
    for (std::size_t c = 0; c <= cols_; ++c) at(pr, c) /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (std::abs(f) < kEps) continue;
      for (std::size_t c = 0; c <= cols_; ++c) at(r, c) -= f * at(pr, c);
    }
    const double f = obj_[pc];
    if (std::abs(f) > kEps) {
      for (std::size_t c = 0; c < cols_; ++c) obj_[c] -= f * at(pr, c);
      obj_[cols_] -= f * rhs(pr);
    }
    basis_[pr] = pc;
  }

  /// Run simplex iterations until optimal or unbounded. `allowed` marks the
  /// columns eligible to enter the basis (artificials are barred in phase 2).
  /// Returns false on unboundedness.
  bool iterate(const std::vector<bool>& allowed) {
    for (;;) {
      // Bland's rule: smallest-index column with a negative reduced cost.
      std::size_t pc = cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (allowed[c] && obj_[c] < -kEps) {
          pc = c;
          break;
        }
      }
      if (pc == cols_) return true;  // optimal

      // Ratio test; Bland ties broken by smallest basis variable index.
      std::size_t pr = rows_;
      double best = 0;
      for (std::size_t r = 0; r < rows_; ++r) {
        if (at(r, pc) > kEps) {
          const double ratio = rhs(r) / at(r, pc);
          if (pr == rows_ || ratio < best - kEps ||
              (std::abs(ratio - best) <= kEps && basis_[r] < basis_[pr])) {
            pr = r;
            best = ratio;
          }
        }
      }
      if (pr == rows_) return false;  // unbounded
      pivot(pr, pc);
    }
  }

 private:
  std::size_t rows_, cols_;
  std::vector<double> a_;
  std::vector<double> obj_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpResult solve_lp(const LinearProgram& lp) {
  const std::size_t n = lp.num_vars();
  const std::size_t m = lp.constraints.size();

  // Column layout: [0, n) structural; then one slack/surplus per inequality;
  // then one artificial per row that needs one.
  std::size_t num_slack = 0;
  for (const auto& c : lp.constraints) {
    if (c.rel != LinearProgram::Relation::Equal) ++num_slack;
  }

  // Normalize rows to rhs >= 0 (flipping the relation when multiplying by -1)
  // before deciding which rows need artificials.
  struct Row {
    std::vector<double> coeffs;
    LinearProgram::Relation rel;
    double rhs;
  };
  std::vector<Row> rows(m);
  for (std::size_t r = 0; r < m; ++r) {
    const auto& c = lp.constraints[r];
    RTLB_CHECK(c.coeffs.size() <= n, "constraint wider than variable count");
    rows[r].coeffs.assign(n, 0.0);
    std::copy(c.coeffs.begin(), c.coeffs.end(), rows[r].coeffs.begin());
    rows[r].rel = c.rel;
    rows[r].rhs = c.rhs;
    if (rows[r].rhs < 0) {
      for (double& v : rows[r].coeffs) v = -v;
      rows[r].rhs = -rows[r].rhs;
      if (rows[r].rel == LinearProgram::Relation::LessEq) {
        rows[r].rel = LinearProgram::Relation::GreaterEq;
      } else if (rows[r].rel == LinearProgram::Relation::GreaterEq) {
        rows[r].rel = LinearProgram::Relation::LessEq;
      }
    }
  }

  std::size_t num_artificial = 0;
  for (const auto& r : rows) {
    if (r.rel != LinearProgram::Relation::LessEq) ++num_artificial;
  }
  const std::size_t cols = n + num_slack + num_artificial;
  Tableau t(m, cols);

  std::size_t next_slack = n;
  std::size_t next_art = n + num_slack;
  std::vector<std::size_t> artificial_cols;
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) t.at(r, c) = rows[r].coeffs[c];
    t.rhs(r) = rows[r].rhs;
    switch (rows[r].rel) {
      case LinearProgram::Relation::LessEq:
        t.at(r, next_slack) = 1.0;
        t.basis()[r] = next_slack++;
        break;
      case LinearProgram::Relation::GreaterEq:
        t.at(r, next_slack) = -1.0;  // surplus
        ++next_slack;
        t.at(r, next_art) = 1.0;
        t.basis()[r] = next_art;
        artificial_cols.push_back(next_art++);
        break;
      case LinearProgram::Relation::Equal:
        t.at(r, next_art) = 1.0;
        t.basis()[r] = next_art;
        artificial_cols.push_back(next_art++);
        break;
    }
  }

  LpResult out;

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    for (std::size_t c : artificial_cols) t.obj(c) = 1.0;
    // Price out the artificial basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis()[r] >= n + num_slack) {
        for (std::size_t c = 0; c < cols; ++c) t.obj(c) -= t.at(r, c);
        t.obj(cols) -= t.rhs(r);
      }
    }
    std::vector<bool> allowed(cols, true);
    if (!t.iterate(allowed)) {
      // Phase-1 objective is bounded below by 0; unbounded cannot happen.
      RTLB_CHECK(false, "phase-1 simplex reported unbounded");
    }
    if (t.obj_value() > 1e-7) {
      out.status = LpResult::Status::Infeasible;
      return out;
    }
    // Drive any remaining (degenerate, value-0) artificials out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis()[r] >= n + num_slack) {
        std::size_t pc = cols;
        for (std::size_t c = 0; c < n + num_slack; ++c) {
          if (std::abs(t.at(r, c)) > kEps) {
            pc = c;
            break;
          }
        }
        if (pc != cols) t.pivot(r, pc);
        // else: the row is all-zero over real variables -> redundant; the
        // artificial stays basic at value 0, which is harmless in phase 2.
      }
    }
  }

  // Phase 2: original objective (converted to minimize).
  const double sign = lp.sense == LinearProgram::Sense::Minimize ? 1.0 : -1.0;
  for (std::size_t c = 0; c < cols; ++c) t.obj(c) = 0.0;
  t.obj(cols) = 0.0;
  for (std::size_t c = 0; c < n; ++c) t.obj(c) = sign * lp.objective[c];
  // Price out the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis()[r];
    if (b < n && std::abs(sign * lp.objective[b]) > 0) {
      const double f = sign * lp.objective[b];
      for (std::size_t c = 0; c < cols; ++c) t.obj(c) -= f * t.at(r, c);
      t.obj(cols) -= f * t.rhs(r);
    }
  }
  std::vector<bool> allowed(cols, true);
  for (std::size_t c : artificial_cols) allowed[c] = false;
  if (!t.iterate(allowed)) {
    out.status = LpResult::Status::Unbounded;
    return out;
  }

  out.status = LpResult::Status::Optimal;
  out.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis()[r] < n) out.x[t.basis()[r]] = t.rhs(r);
  }
  out.objective = sign * t.obj_value();
  return out;
}

}  // namespace rtlb
