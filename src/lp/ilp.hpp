// Integer linear programming by branch-and-bound over the LP relaxation.
//
// Solves the Section-7 dedicated-model cost program exactly (the paper notes
// that relaxing integrality still yields a valid but weaker bound -- both are
// exposed). Variables are all integer and >= 0; the branching adds x <= floor
// / x >= ceil bound rows.
#pragma once

#include <cstdint>
#include <vector>

#include "src/lp/simplex.hpp"

namespace rtlb {

struct IlpResult {
  enum class Status { Optimal, Infeasible, Unbounded };
  Status status = Status::Infeasible;
  double objective = 0;
  std::vector<std::int64_t> x;

  /// Branch-and-bound nodes whose LP relaxation was solved.
  std::int64_t nodes_explored = 0;
  /// The root LP relaxation value (the "weaker bound" of Section 7).
  double relaxation_objective = 0;
};

struct IlpOptions {
  /// Safety valve; the problems in this library need far fewer nodes.
  std::int64_t max_nodes = 200000;
};

/// Solve `lp` with every variable restricted to non-negative integers.
IlpResult solve_ilp(const LinearProgram& lp, const IlpOptions& options = {});

}  // namespace rtlb
