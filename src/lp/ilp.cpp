#include "src/lp/ilp.hpp"

#include <cmath>
#include <queue>

#include "src/common/types.hpp"

namespace rtlb {

namespace {

constexpr double kIntEps = 1e-6;

/// Index of the most fractional variable, or SIZE_MAX if all integral.
std::size_t most_fractional(const std::vector<double>& x) {
  std::size_t best = static_cast<std::size_t>(-1);
  double best_dist = kIntEps;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

struct Node {
  LinearProgram lp;
  double bound;  // LP relaxation objective (lower bound for minimize)

  bool operator<(const Node& other) const {
    // Best-first: smaller bound explored first for minimization.
    return bound > other.bound;
  }
};

}  // namespace

IlpResult solve_ilp(const LinearProgram& lp, const IlpOptions& options) {
  RTLB_CHECK(lp.sense == LinearProgram::Sense::Minimize,
             "solve_ilp currently supports minimization (negate to maximize)");
  IlpResult out;

  LpResult root = solve_lp(lp);
  ++out.nodes_explored;
  if (root.status == LpResult::Status::Infeasible) {
    out.status = IlpResult::Status::Infeasible;
    return out;
  }
  if (root.status == LpResult::Status::Unbounded) {
    out.status = IlpResult::Status::Unbounded;
    return out;
  }
  out.relaxation_objective = root.objective;

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> incumbent_x;

  std::priority_queue<Node> open;
  open.push(Node{lp, root.objective});

  while (!open.empty()) {
    if (out.nodes_explored > options.max_nodes) {
      throw std::runtime_error("solve_ilp: node budget exhausted");
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent - kIntEps) continue;  // pruned

    LpResult sol = solve_lp(node.lp);
    ++out.nodes_explored;
    if (sol.status != LpResult::Status::Optimal) continue;
    if (sol.objective >= incumbent - kIntEps) continue;

    const std::size_t frac = most_fractional(sol.x);
    if (frac == static_cast<std::size_t>(-1)) {
      // Integral solution: new incumbent.
      incumbent = sol.objective;
      incumbent_x.assign(sol.x.size(), 0);
      for (std::size_t i = 0; i < sol.x.size(); ++i) {
        incumbent_x[i] = static_cast<std::int64_t>(std::llround(sol.x[i]));
      }
      continue;
    }

    // Branch on the fractional variable with x <= floor and x >= ceil rows.
    const double value = sol.x[frac];
    for (int side = 0; side < 2; ++side) {
      Node child{node.lp, sol.objective};
      std::vector<double> row(node.lp.num_vars(), 0.0);
      row[frac] = 1.0;
      if (side == 0) {
        child.lp.add_constraint(std::move(row), LinearProgram::Relation::LessEq,
                                std::floor(value));
      } else {
        child.lp.add_constraint(std::move(row), LinearProgram::Relation::GreaterEq,
                                std::ceil(value));
      }
      open.push(std::move(child));
    }
  }

  if (incumbent_x.empty()) {
    // LP was feasible but no integer point exists within the search region.
    out.status = IlpResult::Status::Infeasible;
    return out;
  }
  out.status = IlpResult::Status::Optimal;
  out.objective = incumbent;
  out.x = std::move(incumbent_x);
  return out;
}

}  // namespace rtlb
