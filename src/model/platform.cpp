#include "src/model/platform.hpp"

#include <algorithm>

namespace rtlb {

ResourceId ResourceCatalog::add(Entry e) {
  if (find(e.name) != kInvalidResource) {
    throw ModelError("duplicate resource name '" + e.name + "'");
  }
  entries_.push_back(std::move(e));
  return static_cast<ResourceId>(entries_.size() - 1);
}

ResourceId ResourceCatalog::add_processor_type(std::string name, Cost cost) {
  return add(Entry{std::move(name), cost, /*is_processor=*/true});
}

ResourceId ResourceCatalog::add_resource(std::string name, Cost cost) {
  return add(Entry{std::move(name), cost, /*is_processor=*/false});
}

ResourceId ResourceCatalog::find(std::string_view name) const {
  for (ResourceId r = 0; r < entries_.size(); ++r) {
    if (entries_[r].name == name) return r;
  }
  return kInvalidResource;
}

const ResourceCatalog::Entry& ResourceCatalog::entry(ResourceId r) const {
  RTLB_CHECK(r < entries_.size(), "resource id out of range");
  return entries_[r];
}

void ResourceCatalog::set_cost(ResourceId r, Cost cost) {
  RTLB_CHECK(r < entries_.size(), "resource id out of range");
  entries_[r].cost = cost;
}

int NodeType::units_of(ResourceId r) const {
  if (r == proc) return 1;
  for (const auto& [res, units] : resources) {
    if (res == r) return units;
  }
  return 0;
}

bool NodeType::provides_all(const std::vector<ResourceId>& required) const {
  return std::all_of(required.begin(), required.end(),
                     [this](ResourceId r) { return units_of(r) > 0; });
}

std::size_t DedicatedPlatform::add_node_type(NodeType node) {
  RTLB_CHECK(node.proc != kInvalidResource, "node type needs a processor");
  for (const auto& [res, units] : node.resources) {
    RTLB_CHECK(units >= 1, "node resource units must be >= 1");
    RTLB_CHECK(res != node.proc, "processor listed among node resources");
  }
  std::sort(node.resources.begin(), node.resources.end());
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::vector<std::size_t> DedicatedPlatform::hosts_for(const Task& t) const {
  std::vector<std::size_t> out;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].can_host(t.proc, t.resources)) out.push_back(n);
  }
  return out;
}

bool DedicatedPlatform::some_node_hosts(ResourceId proc_type,
                                        const std::vector<ResourceId>& required) const {
  return std::any_of(nodes_.begin(), nodes_.end(), [&](const NodeType& n) {
    return n.can_host(proc_type, required);
  });
}

}  // namespace rtlb
