// The per-task annotation record of the paper's application model (Sec 2.1).
#pragma once

#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace rtlb {

struct Task {
  std::string name;

  /// C_i: computation time; must be positive.
  Time comp = 1;

  /// rel_i: release time (earliest legal start).
  Time release = 0;

  /// D_i: absolute deadline (latest legal completion).
  Time deadline = kTimeMax;

  /// phi_i: the processor type the task must execute on.
  ResourceId proc = kInvalidResource;

  /// R_i: resources (other than the processor) held for the task's whole
  /// execution. Sorted, unique, never contains `proc`.
  std::vector<ResourceId> resources;

  /// Whether the task may be preempted (Theorem 3) or not (Theorem 4).
  bool preemptive = false;

  /// True if the task needs resource r during execution, counting its
  /// processor type: the paper's ST_r membership test.
  bool uses(ResourceId r) const {
    if (r == proc) return true;
    for (ResourceId x : resources) {
      if (x == r) return true;
    }
    return false;
  }
};

}  // namespace rtlb
