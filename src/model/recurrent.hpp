// Recurrent workload declarations (the model-layer HALF of the workload
// front door; the lowering ALGORITHMS live in src/workload/workload.hpp).
//
// The paper analyzes a single activation of a task DAG; real-time software
// is recurrent. A Workload carries the recurrent template declarations --
// periodic transactions and sporadic DAGs -- exactly as written (or as
// built programmatically): no derived values, no validation. That makes the
// types safe for every layer that already depends on model/ (io parses into
// them, lint checks them, core lowers them via src/workload) without
// widening the layering DAG.
//
// A template task's scalars are all RELATIVE to the activation slot:
// `offset` within the slot, `relative_deadline` from the slot start (0 =
// "end of slot"). Lowering (src/workload/workload.hpp) turns instance k of
// transaction `tr` into the flat task "<tr.name>.<task.name>@<k>" with
// absolute release/deadline.
#pragma once

#include <string>
#include <vector>

#include "src/model/platform.hpp"

namespace rtlb {

/// How a transaction's activations recur.
enum class ReleaseKind {
  /// One activation every `period` ticks, starting at `offset`.
  kPeriodic,
  /// Activations at least `period` (= minimum inter-arrival) ticks apart;
  /// lowered as the densest legal release sequence over a bounded horizon,
  /// which is the worst case for every lower bound in this repository.
  kSporadic,
};

/// One task of a transaction template (vertex of the per-activation DAG).
struct TemplateTask {
  std::string name;  ///< instance k becomes "<transaction>.<name>@k"
  Time comp = 1;
  /// Release offset of this task within the activation slot (>= 0).
  Time offset = 0;
  /// Deadline relative to the slot start; 0 means "end of slot".
  Time relative_deadline = 0;
  ResourceId proc = kInvalidResource;
  std::vector<ResourceId> resources;
  bool preemptive = false;
  /// 1-based source line of the `ttask` directive; 0 = programmatic.
  int line = 0;
};

/// One precedence edge of a template (indices into Transaction::tasks).
struct TemplateEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  Time msg = 0;
  /// 1-based source line of the `tedge` directive; 0 = programmatic.
  int line = 0;
};

/// A recurrent transaction: a DAG template plus its release law. For
/// ReleaseKind::kPeriodic, `period` is the period; for kSporadic it is the
/// minimum inter-arrival time and `horizon` bounds the release sequence
/// (0 = borrow the periodic transactions' hyperperiod).
struct Transaction {
  std::string name;
  ReleaseKind kind = ReleaseKind::kPeriodic;
  Time period = 1;
  /// Release of activation 0 (must lie in [0, period)).
  Time offset = 0;
  /// Sporadic only: activations are generated while their release is
  /// strictly before the horizon. Ignored for periodic transactions.
  Time horizon = 0;
  std::vector<TemplateTask> tasks;
  std::vector<TemplateEdge> edges;
  /// 1-based source line of the `transaction`/`sporadic` directive.
  int line = 0;
};

/// The recurrent front door: a set of transactions, lowered together over
/// one shared hyperperiod. An empty workload is a flat instance.
struct Workload {
  std::vector<Transaction> transactions;

  bool empty() const { return transactions.empty(); }
};

/// checked_hyperperiod() outcome: the lcm of the periodic transactions'
/// periods, or kTimeMax with `overflow` set when the true lcm does not fit
/// in Time (reported by the recurrent lint pass as RTLB-E508).
struct Hyperperiod {
  Time value = 1;
  bool overflow = false;
};

/// Overflow-checked lcm over the PERIODIC transactions' periods (sporadic
/// transactions recur by minimum inter-arrival, not by period, and do not
/// participate). Non-positive periods are skipped -- reporting them is the
/// lint pass's job (RTLB-E501). Never throws; the multiply is widened
/// through __int128 and saturates to kTimeMax (the RTLB-A301 discipline).
Hyperperiod checked_hyperperiod(const std::vector<Transaction>& transactions);

}  // namespace rtlb
