// The real-time application model of Section 2.1: a DAG of annotated tasks
// with message sizes on edges.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/graph/dag.hpp"
#include "src/model/platform.hpp"
#include "src/model/task.hpp"

namespace rtlb {

class Application {
 public:
  /// The catalog must outlive the application; it resolves every ResourceId.
  explicit Application(const ResourceCatalog& catalog) : catalog_(&catalog) {}

  /// Add a task. `task.resources` is canonicalized (sorted, deduplicated).
  TaskId add_task(Task task);

  /// Add precedence edge from -> to carrying a message of `msg_size` ticks
  /// (m_{from,to}; the transfer latency if the two tasks are on different
  /// processors/nodes).
  void add_edge(TaskId from, TaskId to, Time msg_size);

  std::size_t num_tasks() const { return tasks_.size(); }
  const Task& task(TaskId i) const { return tasks_[i]; }
  Task& task(TaskId i) { return tasks_[i]; }
  const std::vector<Task>& tasks() const { return tasks_; }

  const Dag& dag() const { return dag_; }
  const ResourceCatalog& catalog() const { return *catalog_; }

  /// Pred_i / Succ_i as task ids.
  const std::vector<std::uint32_t>& predecessors(TaskId i) const { return dag_.predecessors(i); }
  const std::vector<std::uint32_t>& successors(TaskId i) const { return dag_.successors(i); }

  /// m_{ji}: message size on edge j -> i. Edge must exist.
  Time message(TaskId from, TaskId to) const;

  /// Every edge message, ordered by (from, to) -- one entry per DAG edge.
  /// For whole-graph snapshots (the windows engine's flat model): one pass
  /// here instead of one message() lookup per edge.
  const std::map<std::pair<TaskId, TaskId>, Time>& messages() const { return messages_; }

  /// Resize the message on an EXISTING edge (ModelError otherwise) -- the
  /// delta the sensitivity sweeps and AnalysisSession apply; the DAG shape
  /// never changes after construction.
  void set_message(TaskId from, TaskId to, Time msg_size);

  /// RES = union over tasks of (R_i u {phi_i}), ascending ids.
  std::vector<ResourceId> resource_set() const;

  /// ST_r: ids of the tasks that use r (as processor type or resource),
  /// ascending.
  std::vector<TaskId> tasks_using(ResourceId r) const;

  /// Total computation demand placed on r by ST_r.
  Time total_demand(ResourceId r) const;

  /// Find a task by name; kInvalidTask if absent.
  TaskId find_task(std::string_view name) const;

  /// Throws ModelError on the first structural violation: non-positive comp,
  /// release/deadline inversion, deadline window smaller than comp, invalid
  /// resource ids, processor id that is not a processor type, duplicate
  /// non-empty task names, or a cyclic edge set. Implemented on top of the
  /// structural lint pass (src/lint/passes.hpp); use rtlb::lint() to get ALL
  /// violations as batched diagnostics instead of the first one.
  void validate() const;

 private:
  const ResourceCatalog* catalog_;
  std::vector<Task> tasks_;
  Dag dag_;
  std::map<std::pair<TaskId, TaskId>, Time> messages_;
};

}  // namespace rtlb
