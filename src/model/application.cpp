#include "src/model/application.hpp"

#include <algorithm>

#include "src/lint/passes.hpp"

namespace rtlb {

TaskId Application::add_task(Task task) {
  std::sort(task.resources.begin(), task.resources.end());
  task.resources.erase(std::unique(task.resources.begin(), task.resources.end()),
                       task.resources.end());
  // phi_i is tracked separately; keep R_i free of it so unions stay simple.
  std::erase(task.resources, task.proc);
  tasks_.push_back(std::move(task));
  dag_.grow_to(tasks_.size());
  return static_cast<TaskId>(tasks_.size() - 1);
}

void Application::add_edge(TaskId from, TaskId to, Time msg_size) {
  RTLB_CHECK(from < tasks_.size() && to < tasks_.size(), "edge endpoint out of range");
  if (msg_size < 0) throw ModelError("negative message size");
  dag_.add_edge(from, to);
  messages_[{from, to}] = msg_size;
}

Time Application::message(TaskId from, TaskId to) const {
  auto it = messages_.find({from, to});
  RTLB_CHECK(it != messages_.end(), "message queried for a missing edge");
  return it->second;
}

void Application::set_message(TaskId from, TaskId to, Time msg_size) {
  auto it = messages_.find({from, to});
  if (it == messages_.end()) {
    throw ModelError("set_message: no edge " + std::to_string(from) + " -> " +
                     std::to_string(to));
  }
  if (msg_size < 0) throw ModelError("negative message size");
  it->second = msg_size;
}

std::vector<ResourceId> Application::resource_set() const {
  std::vector<bool> seen(catalog_->size(), false);
  for (const Task& t : tasks_) {
    seen[t.proc] = true;
    for (ResourceId r : t.resources) seen[r] = true;
  }
  std::vector<ResourceId> out;
  for (ResourceId r = 0; r < seen.size(); ++r) {
    if (seen[r]) out.push_back(r);
  }
  return out;
}

std::vector<TaskId> Application::tasks_using(ResourceId r) const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].uses(r)) out.push_back(i);
  }
  return out;
}

Time Application::total_demand(ResourceId r) const {
  Time sum = 0;
  for (const Task& t : tasks_) {
    if (t.uses(r)) sum += t.comp;
  }
  return sum;
}

TaskId Application::find_task(std::string_view name) const {
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) return i;
  }
  return kInvalidTask;
}

void Application::validate() const {
  // Delegates to the structural lint pass (src/lint/passes.hpp) so the
  // error wording and coverage cannot drift between the throwing and the
  // batched-diagnostics paths; validate() keeps its historical first-error
  // contract by throwing the first error-level finding.
  LintResult result;
  DiagnosticSink sink(result, LintOptions{.max_errors = 1});
  structural_lint_pass(LintContext{*this}, sink);
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    throw ModelError(d.subject.empty() ? d.message : d.subject + ": " + d.message);
  }
}

}  // namespace rtlb
