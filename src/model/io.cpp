#include "src/model/io.hpp"

#include <istream>
#include <sstream>

#include "src/common/strings.hpp"

namespace rtlb {

namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw ModelError("line " + std::to_string(line_no) + ": " + msg);
}

ResourceId require_resource(const ResourceCatalog& cat, const std::string& name, int line_no) {
  ResourceId r = cat.find(name);
  if (r == kInvalidResource) fail(line_no, "unknown resource/processor '" + name + "'");
  return r;
}

Transaction* find_transaction(Workload& workload, const std::string& name) {
  for (Transaction& tr : workload.transactions) {
    if (tr.name == name) return &tr;
  }
  return nullptr;
}

std::size_t find_template_task(const Transaction& tr, const std::string& name, int line_no) {
  for (std::size_t i = 0; i < tr.tasks.size(); ++i) {
    if (tr.tasks[i].name == name) return i;
  }
  fail(line_no, "unknown ttask '" + name + "' in transaction '" + tr.name + "'");
}

}  // namespace

ProblemInstance parse_instance(std::istream& in, const ParseOptions& options) {
  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();
  inst.app = std::make_unique<Application>(*inst.catalog);

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string> tok = split_ws(line);
    const std::string& kind = tok[0];

    // Read "key value" pairs following the fixed positional prefix.
    auto keyval = [&](std::size_t start) {
      std::vector<std::pair<std::string, std::string>> kv;
      for (std::size_t i = start; i < tok.size();) {
        if (tok[i] == "preemptive") {
          kv.emplace_back("preemptive", "1");
          ++i;
        } else {
          if (i + 1 >= tok.size()) fail(line_no, "dangling key '" + tok[i] + "'");
          kv.emplace_back(tok[i], tok[i + 1]);
          i += 2;
        }
      }
      return kv;
    };

    if (kind == "proctype" || kind == "resource") {
      if (tok.size() < 2) fail(line_no, kind + " needs a name");
      Cost cost = 0;
      for (const auto& [k, v] : keyval(2)) {
        if (k == "cost") cost = parse_int(v, "cost");
        else fail(line_no, "unknown key '" + k + "'");
      }
      if (kind == "proctype") inst.catalog->add_processor_type(tok[1], cost);
      else inst.catalog->add_resource(tok[1], cost);
      inst.lines.resource_lines.push_back(line_no);  // catalog ids are dense
    } else if (kind == "task") {
      if (tok.size() < 2) fail(line_no, "task needs a name");
      Task t;
      t.name = tok[1];
      bool have_proc = false;
      for (const auto& [k, v] : keyval(2)) {
        if (k == "comp") t.comp = parse_int(v, "comp");
        else if (k == "rel") t.release = parse_int(v, "rel");
        else if (k == "deadline") t.deadline = parse_int(v, "deadline");
        else if (k == "proc") { t.proc = require_resource(*inst.catalog, v, line_no); have_proc = true; }
        else if (k == "res") {
          for (const std::string& r : split(v, ',')) {
            t.resources.push_back(require_resource(*inst.catalog, r, line_no));
          }
        } else if (k == "preemptive") t.preemptive = true;
        else fail(line_no, "unknown key '" + k + "'");
      }
      if (!have_proc) fail(line_no, "task '" + t.name + "' missing proc");
      if (inst.app->find_task(t.name) != kInvalidTask) fail(line_no, "duplicate task '" + t.name + "'");
      inst.app->add_task(std::move(t));
      inst.lines.task_lines.push_back(line_no);
    } else if (kind == "edge") {
      if (tok.size() < 3) fail(line_no, "edge needs two task names");
      TaskId from = inst.app->find_task(tok[1]);
      TaskId to = inst.app->find_task(tok[2]);
      if (from == kInvalidTask) fail(line_no, "unknown task '" + tok[1] + "'");
      if (to == kInvalidTask) fail(line_no, "unknown task '" + tok[2] + "'");
      Time msg = 0;
      for (const auto& [k, v] : keyval(3)) {
        if (k == "msg") msg = parse_int(v, "msg");
        else fail(line_no, "unknown key '" + k + "'");
      }
      inst.app->add_edge(from, to, msg);
      inst.lines.edge_lines[{from, to}] = line_no;
    } else if (kind == "node") {
      if (tok.size() < 2) fail(line_no, "node needs a name");
      NodeType n;
      n.name = tok[1];
      for (const auto& [k, v] : keyval(2)) {
        if (k == "cost") n.cost = parse_int(v, "cost");
        else if (k == "proc") n.proc = require_resource(*inst.catalog, v, line_no);
        else if (k == "res") {
          for (const std::string& spec : split(v, ',')) {
            std::vector<std::string> parts = split(spec, ':');
            if (parts.empty() || parts.size() > 2) fail(line_no, "bad res spec '" + spec + "'");
            ResourceId r = require_resource(*inst.catalog, parts[0], line_no);
            int units = parts.size() == 2
                            ? static_cast<int>(parse_int(parts[1], "units"))
                            : 1;
            n.resources.emplace_back(r, units);
          }
        } else fail(line_no, "unknown key '" + k + "'");
      }
      if (n.proc == kInvalidResource) fail(line_no, "node '" + n.name + "' missing proc");
      inst.platform.add_node_type(std::move(n));
      inst.lines.node_lines.push_back(line_no);
    } else if (kind == "transaction" || kind == "sporadic") {
      if (tok.size() < 2) fail(line_no, kind + " needs a name");
      const bool sporadic = kind == "sporadic";
      Transaction tr;
      tr.name = tok[1];
      tr.kind = sporadic ? ReleaseKind::kSporadic : ReleaseKind::kPeriodic;
      tr.line = line_no;
      if (find_transaction(inst.workload, tr.name)) {
        fail(line_no, "duplicate transaction '" + tr.name + "'");
      }
      const std::string rate_key = sporadic ? "mininter" : "period";
      bool have_rate = false;
      for (const auto& [k, v] : keyval(2)) {
        if (k == rate_key) { tr.period = parse_int(v, rate_key); have_rate = true; }
        else if (k == "offset") tr.offset = parse_int(v, "offset");
        else if (sporadic && k == "horizon") tr.horizon = parse_int(v, "horizon");
        else fail(line_no, "unknown key '" + k + "'");
      }
      if (!have_rate) fail(line_no, kind + " '" + tr.name + "' missing " + rate_key);
      inst.workload.transactions.push_back(std::move(tr));
    } else if (kind == "ttask") {
      if (tok.size() < 3) fail(line_no, "ttask needs a transaction and a name");
      Transaction* tr = find_transaction(inst.workload, tok[1]);
      if (!tr) fail(line_no, "unknown transaction '" + tok[1] + "'");
      TemplateTask t;
      t.name = tok[2];
      t.line = line_no;
      for (const TemplateTask& prev : tr->tasks) {
        if (prev.name == t.name) fail(line_no, "duplicate ttask '" + t.name + "'");
      }
      bool have_proc = false;
      for (const auto& [k, v] : keyval(3)) {
        if (k == "comp") t.comp = parse_int(v, "comp");
        else if (k == "offset") t.offset = parse_int(v, "offset");
        else if (k == "deadline") t.relative_deadline = parse_int(v, "deadline");
        else if (k == "proc") { t.proc = require_resource(*inst.catalog, v, line_no); have_proc = true; }
        else if (k == "res") {
          for (const std::string& r : split(v, ',')) {
            t.resources.push_back(require_resource(*inst.catalog, r, line_no));
          }
        } else if (k == "preemptive") t.preemptive = true;
        else fail(line_no, "unknown key '" + k + "'");
      }
      if (!have_proc) fail(line_no, "ttask '" + t.name + "' missing proc");
      tr->tasks.push_back(std::move(t));
    } else if (kind == "tedge") {
      if (tok.size() < 4) fail(line_no, "tedge needs a transaction and two ttask names");
      Transaction* tr = find_transaction(inst.workload, tok[1]);
      if (!tr) fail(line_no, "unknown transaction '" + tok[1] + "'");
      TemplateEdge e;
      e.from = find_template_task(*tr, tok[2], line_no);
      e.to = find_template_task(*tr, tok[3], line_no);
      e.line = line_no;
      for (const auto& [k, v] : keyval(4)) {
        if (k == "msg") e.msg = parse_int(v, "msg");
        else fail(line_no, "unknown key '" + k + "'");
      }
      tr->edges.push_back(e);
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  if (options.validate) inst.app->validate();
  return inst;
}

ProblemInstance parse_instance_string(const std::string& text, const ParseOptions& options) {
  std::istringstream in(text);
  return parse_instance(in, options);
}

std::string serialize_instance(const Application& app, const DedicatedPlatform& platform) {
  const ResourceCatalog& cat = app.catalog();
  std::ostringstream out;
  for (ResourceId r = 0; r < cat.size(); ++r) {
    out << (cat.is_processor(r) ? "proctype " : "resource ") << cat.name(r)
        << " cost " << cat.cost(r) << "\n";
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    out << "task " << t.name << " comp " << t.comp << " rel " << t.release
        << " deadline " << t.deadline << " proc " << cat.name(t.proc);
    if (!t.resources.empty()) {
      std::vector<std::string> names;
      for (ResourceId r : t.resources) names.push_back(cat.name(r));
      out << " res " << join(names, ",");
    }
    if (t.preemptive) out << " preemptive";
    out << "\n";
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) {
      out << "edge " << app.task(i).name << " " << app.task(j).name << " msg "
          << app.message(i, j) << "\n";
    }
  }
  for (const NodeType& n : platform.node_types()) {
    out << "node " << n.name << " cost " << n.cost << " proc " << cat.name(n.proc);
    if (!n.resources.empty()) {
      std::vector<std::string> specs;
      for (const auto& [r, units] : n.resources) {
        specs.push_back(cat.name(r) + ":" + std::to_string(units));
      }
      out << " res " << join(specs, ",");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace rtlb
