// Fluent construction of applications -- a thin ergonomic layer over
// Application for examples and tests:
//
//   AppBuilder b(catalog);
//   b.task("sense").comp(2).deadline(20).on(cpu).needs(sensor);
//   b.task("filter").comp(5).deadline(14).on(dsp);
//   b.edge("sense", "filter", /*msg=*/3);
//   Application app = b.build();   // validates
//
// Tasks default to comp 1, release 0, unconstrained deadline,
// non-preemptive; every task must be given a processor type before build().
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "src/model/application.hpp"

namespace rtlb {

class AppBuilder {
 public:
  class TaskRef {
   public:
    TaskRef& comp(Time c) {
      task_->comp = c;
      return *this;
    }
    TaskRef& release(Time r) {
      task_->release = r;
      return *this;
    }
    TaskRef& deadline(Time d) {
      task_->deadline = d;
      return *this;
    }
    TaskRef& on(ResourceId proc) {
      task_->proc = proc;
      return *this;
    }
    TaskRef& needs(ResourceId r) {
      task_->resources.push_back(r);
      return *this;
    }
    TaskRef& preemptive(bool p = true) {
      task_->preemptive = p;
      return *this;
    }

   private:
    friend class AppBuilder;
    explicit TaskRef(Task* task) : task_(task) {}
    Task* task_;
  };

  explicit AppBuilder(const ResourceCatalog& catalog) : catalog_(&catalog) {}

  /// Stage a task; chain the setters on the returned reference. Duplicate
  /// names are rejected at build().
  TaskRef task(std::string name) {
    Task t;
    t.name = std::move(name);
    staged_.push_back(std::move(t));
    return TaskRef(&staged_.back());
  }

  /// Stage an edge by task names (resolved at build()).
  AppBuilder& edge(std::string from, std::string to, Time msg = 0) {
    edges_.push_back({std::move(from), std::move(to), msg});
    return *this;
  }

  /// Materialize and validate. The builder can be reused afterwards only by
  /// staging a fresh set of tasks.
  Application build() const {
    Application app(*catalog_);
    for (const Task& t : staged_) {
      if (t.proc == kInvalidResource) {
        throw ModelError("task '" + t.name + "' was never given a processor type");
      }
      if (app.find_task(t.name) != kInvalidTask) {
        throw ModelError("duplicate task name '" + t.name + "'");
      }
      app.add_task(t);
    }
    for (const Edge& e : edges_) {
      const TaskId from = app.find_task(e.from);
      const TaskId to = app.find_task(e.to);
      if (from == kInvalidTask) throw ModelError("edge from unknown task '" + e.from + "'");
      if (to == kInvalidTask) throw ModelError("edge to unknown task '" + e.to + "'");
      app.add_edge(from, to, e.msg);
    }
    app.validate();
    return app;
  }

 private:
  struct Edge {
    std::string from, to;
    Time msg;
  };

  const ResourceCatalog* catalog_;
  // std::deque: TaskRef holds a pointer into the container, so staged
  // tasks must never relocate.
  std::deque<Task> staged_;
  std::vector<Edge> edges_;
};

}  // namespace rtlb
