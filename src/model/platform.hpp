// Distributed-system models (Sec 2.2): the resource catalog shared by both
// architectures, and the dedicated model's node-type menu.
//
// Shared model: all resources reachable from all processors; its only extra
// datum is the per-unit cost CostR(r), which lives in the catalog.
// Dedicated model: the system is assembled from node types n in Lambda, each
// bundling one processor of a fixed type with a resource multiset lambda_n
// and carrying a cost CostN(n).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/model/task.hpp"

namespace rtlb {

/// Cost unit for CostR / CostN.
using Cost = std::int64_t;

/// Interns resource and processor-type names; owns per-unit costs.
/// The paper's RES ranges over ids of this catalog.
class ResourceCatalog {
 public:
  ResourceId add_processor_type(std::string name, Cost cost = 0);
  ResourceId add_resource(std::string name, Cost cost = 0);

  /// Lookup by name; kInvalidResource if absent.
  ResourceId find(std::string_view name) const;

  std::size_t size() const { return entries_.size(); }
  bool is_processor(ResourceId r) const { return entry(r).is_processor; }
  const std::string& name(ResourceId r) const { return entry(r).name; }
  Cost cost(ResourceId r) const { return entry(r).cost; }
  void set_cost(ResourceId r, Cost cost);

 private:
  struct Entry {
    std::string name;
    Cost cost = 0;
    bool is_processor = false;
  };
  const Entry& entry(ResourceId r) const;
  ResourceId add(Entry e);

  std::vector<Entry> entries_;
};

/// One node type of the dedicated model: a processor of type `proc` plus a
/// multiset of dedicated resources (gamma_nr units of each r).
struct NodeType {
  std::string name;
  ResourceId proc = kInvalidResource;
  /// (resource, units) pairs, sorted by resource id, units >= 1.
  std::vector<std::pair<ResourceId, int>> resources;
  Cost cost = 0;

  /// gamma_nr: units of r provided by one node of this type. A node provides
  /// exactly one unit of its processor type.
  int units_of(ResourceId r) const;

  /// lambda_n superset test: does the node carry at least one unit of every
  /// resource in `required`?
  bool provides_all(const std::vector<ResourceId>& required) const;

  /// Can a task with processor type `proc_type` and resource set `required`
  /// execute on this node type (the eta_i membership test)?
  bool can_host(ResourceId proc_type, const std::vector<ResourceId>& required) const {
    return proc == proc_type && provides_all(required);
  }
};

/// The dedicated model's Lambda: the menu of node types a system may be
/// assembled from.
class DedicatedPlatform {
 public:
  std::size_t add_node_type(NodeType node);

  std::size_t num_node_types() const { return nodes_.size(); }
  const NodeType& node_type(std::size_t n) const { return nodes_[n]; }
  const std::vector<NodeType>& node_types() const { return nodes_; }

  /// Indices of node types that can host the task (eta_i). Empty means the
  /// application is trivially infeasible on this platform.
  std::vector<std::size_t> hosts_for(const Task& t) const;

  /// True iff some single node type provides a processor of type `proc_type`
  /// plus the whole union `required` -- the dedicated-model mergeability
  /// condition (Definition 2(ii)).
  bool some_node_hosts(ResourceId proc_type, const std::vector<ResourceId>& required) const;

 private:
  std::vector<NodeType> nodes_;
};

}  // namespace rtlb
