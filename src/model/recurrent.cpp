#include "src/model/recurrent.hpp"

#include <numeric>

namespace rtlb {

Hyperperiod checked_hyperperiod(const std::vector<Transaction>& transactions) {
  Hyperperiod out;
  Time h = 1;
  for (const Transaction& tr : transactions) {
    if (tr.kind != ReleaseKind::kPeriodic) continue;
    if (tr.period <= 0) continue;  // reported by the lint pass (RTLB-E501)
    const Time g = std::gcd(h, tr.period);
    // lcm(h, p) = (h/g)*p can exceed Time for co-prime large periods;
    // widen through __int128 and saturate instead of silently wrapping.
    const __int128 wide = static_cast<__int128>(h / g) * tr.period;
    if (wide > static_cast<__int128>(kTimeMax)) {
      out.value = kTimeMax;
      out.overflow = true;
      return out;
    }
    h = static_cast<Time>(wide);
  }
  out.value = h;
  return out;
}

}  // namespace rtlb
