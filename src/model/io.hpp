// Line-oriented text format for problem instances (application + platform),
// so workloads can be stored, diffed, and fed to the example binaries.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   proctype <name> cost <int>
//   resource <name> cost <int>
//   task <name> comp <int> rel <int> deadline <int> proc <name>
//        [res <r1>,<r2>,...] [preemptive]
//   edge <from-task> <to-task> msg <int>
//   node <name> cost <int> proc <proctype> [res <r1>:<units>,...]
//
// Declarations may appear in any order except that names must be declared
// before use.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

/// A parsed instance. The catalog is heap-allocated so the Application's
/// internal pointer stays valid when the instance is moved.
struct ProblemInstance {
  std::unique_ptr<ResourceCatalog> catalog;
  std::unique_ptr<Application> app;
  DedicatedPlatform platform;
};

/// Parse an instance; throws ModelError with a line number on bad input.
ProblemInstance parse_instance(std::istream& in);
ProblemInstance parse_instance_string(const std::string& text);

/// Serialize an instance back to the text format (round-trip safe).
std::string serialize_instance(const Application& app, const DedicatedPlatform& platform);

}  // namespace rtlb
