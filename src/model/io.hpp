// Line-oriented text format for problem instances (application + platform),
// so workloads can be stored, diffed, and fed to the example binaries.
//
// Grammar (one directive per line, '#' starts a comment):
//
//   proctype <name> cost <int>
//   resource <name> cost <int>
//   task <name> comp <int> rel <int> deadline <int> proc <name>
//        [res <r1>,<r2>,...] [preemptive]
//   edge <from-task> <to-task> msg <int>
//   node <name> cost <int> proc <proctype> [res <r1>:<units>,...]
//
// Recurrent front door (parsed into ProblemInstance::workload; lowered to
// flat tasks by src/workload/workload.hpp, NOT here):
//
//   transaction <name> period <int> [offset <int>]
//   sporadic <name> mininter <int> [offset <int>] [horizon <int>]
//   ttask <transaction> <name> comp <int> [offset <int>] [deadline <int>]
//         proc <name> [res <r1>,<r2>,...] [preemptive]
//   tedge <transaction> <from-ttask> <to-ttask> [msg <int>]
//
// Declarations may appear in any order except that names must be declared
// before use. The parser enforces only SYNTAX (known directives/keys,
// resolvable names, no duplicates); semantic values -- non-positive periods,
// out-of-range offsets, overlong deadlines -- are stored raw so the
// recurrent lint pass (src/lint/recurrent.hpp) can batch-report them with
// fix-its anchored to the declaration lines (each Transaction/TemplateTask/
// TemplateEdge carries its own 1-based source line; that IS the source map
// for the recurrent half of the grammar).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/model/recurrent.hpp"

namespace rtlb {

/// Where each declaration of a parsed instance came from: 1-based source
/// lines for tasks (by TaskId), edges, node types (by menu index), and
/// catalog entries -- proctype/resource declarations -- by ResourceId.
/// Diagnostics (src/lint) use this to point at the offending line and to
/// anchor machine-applicable fixes; a value of 0 means "unknown" (e.g. a
/// programmatically built model).
struct SourceMap {
  std::vector<int> task_lines;
  std::map<std::pair<TaskId, TaskId>, int> edge_lines;
  std::vector<int> node_lines;
  std::vector<int> resource_lines;

  int task_line(TaskId i) const {
    return i < task_lines.size() ? task_lines[i] : 0;
  }
  int edge_line(TaskId from, TaskId to) const {
    auto it = edge_lines.find({from, to});
    return it != edge_lines.end() ? it->second : 0;
  }
  int node_line(std::size_t n) const {
    return n < node_lines.size() ? node_lines[n] : 0;
  }
  int resource_line(ResourceId r) const {
    return r < resource_lines.size() ? resource_lines[r] : 0;
  }
};

/// A parsed instance. The catalog is heap-allocated so the Application's
/// internal pointer stays valid when the instance is moved. `workload`
/// holds the recurrent declarations exactly as written; it is EMPTY for
/// flat files, and its transactions are not part of `app` until
/// lower_instance() (src/workload/workload.hpp) appends their instances.
struct ProblemInstance {
  std::unique_ptr<ResourceCatalog> catalog;
  std::unique_ptr<Application> app;
  DedicatedPlatform platform;
  Workload workload;
  SourceMap lines;
};

struct ParseOptions {
  /// Run Application::validate() after parsing (the historical behavior).
  /// The lint CLI turns this off so structurally broken instances can still
  /// be materialized and reported as a batch of diagnostics instead of one
  /// first-error throw.
  bool validate = true;
};

/// Parse an instance; throws ModelError with a line number on bad input.
ProblemInstance parse_instance(std::istream& in, const ParseOptions& options = {});
ProblemInstance parse_instance_string(const std::string& text, const ParseOptions& options = {});

/// Serialize an instance back to the text format (round-trip safe).
std::string serialize_instance(const Application& app, const DedicatedPlatform& platform);

}  // namespace rtlb
