// The modern path-based competitor: He et al.'s long-paths response-time
// bound for DAG tasks (arXiv 2307.13401; the technique debuts in
// arXiv 2211.08800).
//
// Graham's classic list-scheduling bound charges ALL work outside one
// critical path against the m processors: R <= len(lambda_1) +
// (vol - len(lambda_1)) / m. He et al. observe that work lying on OTHER
// long vertex-disjoint paths cannot interfere with the critical path either
// -- while the critical path runs, each disjoint path occupies at most one
// processor -- which sharpens the interference term to
//
//   R  <=  len(lambda_1) + ( vol - sum_{i<=m} len(lambda_i) ) / m
//
// for any m vertex-disjoint paths lambda_1 >= lambda_2 >= ... (lambda_1 the
// critical path). The deeper the path structure of the DAG, the more work
// the sum removes from the interference term.
//
// Role in this repository: the bound is an UPPER bound on response time,
// hence a SUFFICIENT processor count -- the smallest m whose bound meets the
// deadline is guaranteed enough under any work-conserving scheduler. The
// Alqadi-Ramanathan Section 6/7 analysis produces the opposite face: a
// NECESSARY processor count below which no schedule exists. The head-to-head
// table in EXPERIMENTS.md (backed by bench/bench_workloads.cpp) reports how
// tightly the two faces sandwich the true requirement on lowered
// periodic/sporadic grids.
//
// Model scope: identical processors, zero communication cost, no resource
// constraints -- exactly what the path-based literature analyzes. Releases,
// deadlines, messages, and resource sets in `app` are ignored.
#pragma once

#include <vector>

#include "src/model/application.hpp"

namespace rtlb {

/// The reusable part of the analysis: one greedy vertex-disjoint path
/// decomposition, computed once and queried for any m / any deadline.
struct LongPathsDecomposition {
  Time critical_path = 0;   ///< len(lambda_1)
  Time volume = 0;          ///< total computation time
  /// Path lengths len(lambda_1) >= len(lambda_2) >= ..., covering every
  /// vertex exactly once (greedy peeling: repeatedly extract the longest
  /// path among the not-yet-covered vertices).
  std::vector<Time> paths;
};

/// Peel `app`'s DAG into vertex-disjoint paths, longest first.
LongPathsDecomposition long_paths_decompose(const Application& app);

/// He et al.'s response-time upper bound on m identical processors, clamped
/// below by the trivial lower bounds max(len(lambda_1), ceil(vol/m)) so the
/// result is always a valid schedule-length estimate. Requires m >= 1.
Time long_paths_response_time(const LongPathsDecomposition& d, int m);

/// Smallest m whose long-paths bound meets `deadline` -- a SUFFICIENT
/// processor count. Returns 0 when no m suffices (deadline below the
/// critical path: the bound can never meet it).
int long_paths_min_processors(const LongPathsDecomposition& d, Time deadline);

}  // namespace rtlb
