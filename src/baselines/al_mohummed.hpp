// Al-Mohummed (1990): "Lower bound on the number of processors and time for
// scheduling precedence graphs with communication costs" -- the paper's
// reference [1] and its direct predecessor.
//
// Model vs. this paper: identical processors (every pair of tasks is
// mergeable), NON-zero communication, but no per-task deadlines/releases, no
// resource requirements, and non-preemptive tasks finishing within a common
// horizon. The EST/LCT evaluation is the merging recursion that Section 4
// generalizes; here it runs with the "always mergeable" notion and windows
// anchored at 0 / horizon.
//
// Per-task releases/deadlines and resource sets in the input are IGNORED
// (they are outside the 1990 model); message sizes are honored.
#pragma once

#include <cstdint>

#include "src/model/application.hpp"

namespace rtlb {

struct AlMohummedResult {
  /// Lower bound on identical processors to finish by `horizon`.
  std::int64_t processors = 0;
  /// Minimum schedule length implied by the merged EST recursion.
  Time critical_time = 0;
  /// Horizon actually used (max(requested, critical_time)).
  Time horizon = 0;
};

/// Compute the bound for completing `app` within `horizon`; horizon = 0 uses
/// the communication-aware critical time.
AlMohummedResult al_mohummed_bound(const Application& app, Time horizon = 0);

}  // namespace rtlb
