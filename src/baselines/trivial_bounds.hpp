// Trivial lower bounds used as the weakest comparators in the benches.
//
// Work bound: resource r must supply at least
//   ceil( sum_{i in ST_r} C_i / (tau_f(r) - tau_s(r)) )
// units, where [tau_s, tau_f] is the union of the tasks' windows. This is
// Eq. 6.3 evaluated on the single widest interval only.
//
// Critical-path check: if the longest path of computation (+ messages, which
// can only help) through some task exceeds its deadline-to-release window,
// no system of any size is feasible.
#pragma once

#include <vector>

#include "src/core/est_lct.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// The single-interval work bound for resource r (0 if ST_r is empty).
std::int64_t work_bound(const Application& app, const TaskWindows& windows, ResourceId r);

/// Work bounds for all of RES, in resource_set() order.
std::vector<std::int64_t> all_work_bounds(const Application& app, const TaskWindows& windows);

/// True if some precedence chain cannot fit between its release and deadline
/// even with unlimited resources and zero communication.
bool critical_path_infeasible(const Application& app);

}  // namespace rtlb
