// The dual problem from the prior art the paper builds on: given a FIXED
// number m of processors, lower-bound the completion time.
//
// Fernandez & Bussell (1973, Theorem 7-style): any m-processor schedule of
// length omega must fit the mandatory demand of every interval within
// m * (interval length), so
//
//   omega >= t_c + max over [t1,t2] ceil( (Theta(t1,t2) - m*(t2-t1)) / m )
//
// with windows anchored to the critical time t_c. Jain & Rajaraman (1994)
// tighten the same idea by SECTIONING the graph -- splitting it at points
// where windows do not straddle -- and summing per-section excesses; their
// scheme is the ancestor of the paper's Section-5 partitioning, and the
// implementation below reuses the same block structure.
#pragma once

#include <cstdint>

#include "src/model/application.hpp"

namespace rtlb {

struct MakespanBound {
  /// Critical time t_c (zero-communication longest path).
  Time critical_time = 0;
  /// ceil(total work / m): the work bound on time.
  Time work_bound = 0;
  /// Fernandez-Bussell interval-excess bound (>= both of the above).
  Time fb_bound = 0;
  /// Jain-Rajaraman sectioned bound: per-section excesses accumulate
  /// (>= fb_bound when multiple sections exist, == on one section).
  Time jr_bound = 0;
};

/// Lower bounds on schedule length for `app` on m identical processors,
/// in the 1973/1994 model: single processor type, zero communication, no
/// releases/deadlines/resources (extra constraints in `app` are ignored,
/// matching what those analyses could see). Requires m >= 1.
MakespanBound makespan_lower_bound(const Application& app, int m);

}  // namespace rtlb
