#include "src/baselines/long_paths.hpp"

#include <algorithm>

namespace rtlb {

LongPathsDecomposition long_paths_decompose(const Application& app) {
  LongPathsDecomposition out;
  const std::size_t n = app.num_tasks();
  if (n == 0) return out;

  std::vector<Time> comp(n);
  for (TaskId i = 0; i < n; ++i) {
    comp[i] = app.task(i).comp;
    out.volume += comp[i];
  }
  const std::vector<std::uint32_t> order = *app.dag().topological_order();

  // Greedy peeling: repeatedly extract the longest path among the vertices
  // not yet covered. Paths through covered vertices are forbidden, which is
  // exactly the vertex-disjointness the He et al. bound needs. Each round is
  // one topological DP; at most n rounds (every round covers >= 1 vertex).
  std::vector<bool> covered(n, false);
  std::vector<Time> best(n);
  std::vector<std::uint32_t> via(n);
  std::size_t remaining = n;
  while (remaining > 0) {
    std::uint32_t tail = 0;
    Time tail_len = kTimeMin;
    for (std::uint32_t v : order) {
      if (covered[v]) continue;
      best[v] = comp[v];
      via[v] = v;  // self = path starts here
      for (std::uint32_t u : app.dag().predecessors(v)) {
        if (covered[u]) continue;
        if (best[u] + comp[v] > best[v]) {
          best[v] = best[u] + comp[v];
          via[v] = u;
        }
      }
      if (best[v] > tail_len) {
        tail_len = best[v];
        tail = v;
      }
    }
    for (std::uint32_t v = tail;; v = via[v]) {
      covered[v] = true;
      --remaining;
      if (via[v] == v) break;
    }
    out.paths.push_back(tail_len);
  }
  // Greedy peeling is not guaranteed monotone across rounds (removing a
  // path can expose a longer leftover chain elsewhere); the bound wants the
  // lengths longest-first.
  std::sort(out.paths.begin(), out.paths.end(), std::greater<>());
  out.critical_path = out.paths.front();
  return out;
}

Time long_paths_response_time(const LongPathsDecomposition& d, int m) {
  RTLB_CHECK(m >= 1, "long-paths bound needs at least one processor");
  Time disjoint = 0;
  const std::size_t take = std::min<std::size_t>(d.paths.size(), static_cast<std::size_t>(m));
  for (std::size_t i = 0; i < take; ++i) disjoint += d.paths[i];
  const Time interference = d.volume - disjoint;  // >= 0: the paths are disjoint
  Time bound = d.critical_path + ceil_div(interference, m);
  bound = std::max(bound, ceil_div(d.volume, m));
  return std::max(bound, d.critical_path);
}

int long_paths_min_processors(const LongPathsDecomposition& d, Time deadline) {
  if (deadline < d.critical_path) return 0;  // the bound can never meet it
  const int limit = static_cast<int>(std::max<std::size_t>(d.paths.size(), 1));
  for (int m = 1; m < limit; ++m) {
    if (long_paths_response_time(d, m) <= deadline) return m;
  }
  // At m = #paths the disjoint sum is the whole volume and the bound equals
  // the critical path, which the guard above already admitted.
  return limit;
}

}  // namespace rtlb
