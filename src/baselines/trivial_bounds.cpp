#include "src/baselines/trivial_bounds.hpp"

#include <algorithm>

namespace rtlb {

std::int64_t work_bound(const Application& app, const TaskWindows& windows, ResourceId r) {
  const std::vector<TaskId> st = app.tasks_using(r);
  if (st.empty()) return 0;
  Time work = 0;
  Time lo = kTimeMax, hi = kTimeMin;
  for (TaskId i : st) {
    work += app.task(i).comp;
    lo = std::min(lo, windows.est[i]);
    hi = std::max(hi, windows.lct[i]);
  }
  if (hi <= lo) return static_cast<std::int64_t>(st.size());  // degenerate windows
  return ceil_div(work, hi - lo);
}

std::vector<std::int64_t> all_work_bounds(const Application& app, const TaskWindows& windows) {
  std::vector<std::int64_t> out;
  for (ResourceId r : app.resource_set()) out.push_back(work_bound(app, windows, r));
  return out;
}

bool critical_path_infeasible(const Application& app) {
  auto topo = app.dag().topological_order();
  if (!topo) throw ModelError("critical_path_infeasible: cyclic graph");
  // earliest[i]: completion of i assuming unlimited resources, zero comm.
  std::vector<Time> earliest(app.num_tasks());
  for (TaskId i : *topo) {
    Time start = app.task(i).release;
    for (TaskId j : app.predecessors(i)) start = std::max(start, earliest[j]);
    earliest[i] = start + app.task(i).comp;
    if (earliest[i] > app.task(i).deadline) return true;
  }
  return false;
}

}  // namespace rtlb
