// Fernandez & Bussell (1973): "Bounds on the number of processors and time
// for multiprocessor optimal schedules" -- the paper's reference [3] and the
// classical ancestor of its analysis.
//
// Model restrictions vs. this paper: a single processor type, no resources,
// zero communication times, no per-task releases/deadlines; every task must
// complete within a common horizon omega (the schedule length). The bound is
// the peak of the minimum load density, with task windows derived purely
// from precedence (forward/backward longest paths).
//
// We implement it faithfully to its model: message sizes, resource sets, and
// per-task deadlines in the input are IGNORED (that is the point of the
// comparison in bench_baselines).
#pragma once

#include <cstdint>

#include "src/model/application.hpp"

namespace rtlb {

struct FernandezBussellResult {
  /// Lower bound on identical processors to finish by `horizon`.
  std::int64_t processors = 0;
  /// The critical time t_c (minimum possible schedule length).
  Time critical_time = 0;
  /// The horizon actually used (max(requested, critical_time)).
  Time horizon = 0;
};

/// Compute the F-B bound for completing `app` within `horizon`; pass
/// horizon = 0 to use the critical time itself (their headline setting).
FernandezBussellResult fernandez_bussell_bound(const Application& app, Time horizon = 0);

}  // namespace rtlb
