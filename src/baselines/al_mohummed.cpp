#include "src/baselines/al_mohummed.hpp"

#include <algorithm>
#include <memory>

#include "src/common/ratio.hpp"
#include "src/core/est_lct.hpp"
#include "src/core/overlap.hpp"

namespace rtlb {

namespace {

/// Strip the input down to the 1990 model: one processor type, no resources,
/// no releases, deadline = `horizon`, non-preemptive; keep C_i and m_ij.
struct StrippedModel {
  ResourceCatalog catalog;
  std::unique_ptr<Application> app;
};

StrippedModel strip(const Application& app, Time horizon) {
  StrippedModel out;
  const ResourceId proc = out.catalog.add_processor_type("P");
  out.app = std::make_unique<Application>(out.catalog);
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    Task t;
    t.name = app.task(i).name;
    t.comp = app.task(i).comp;
    t.release = 0;
    t.deadline = horizon;
    t.proc = proc;
    t.preemptive = false;
    out.app->add_task(std::move(t));
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    for (TaskId j : app.successors(i)) out.app->add_edge(i, j, app.message(i, j));
  }
  return out;
}

}  // namespace

AlMohummedResult al_mohummed_bound(const Application& app, Time horizon) {
  AlMohummedResult out;
  if (app.num_tasks() == 0) return out;

  SharedMergeOracle oracle;

  // Pass 1: communication-aware critical time from the merged EST recursion
  // (deadlines do not influence ESTs).
  {
    StrippedModel probe = strip(app, kTimeMax);
    TaskWindows w = compute_windows(*probe.app, oracle);
    for (TaskId i = 0; i < probe.app->num_tasks(); ++i) {
      out.critical_time = std::max(out.critical_time, w.est[i] + probe.app->task(i).comp);
    }
  }
  out.horizon = std::max(horizon, out.critical_time);

  // Pass 2: full windows against the horizon, then the density bound.
  StrippedModel model = strip(app, out.horizon);
  TaskWindows w = compute_windows(*model.app, oracle);

  std::vector<Time> points;
  for (TaskId i = 0; i < model.app->num_tasks(); ++i) {
    points.push_back(w.est[i]);
    points.push_back(w.lct[i]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  MaxRatio best;
  for (std::size_t l = 0; l + 1 < points.size(); ++l) {
    for (std::size_t k = l + 1; k < points.size(); ++k) {
      Time theta = 0;
      for (TaskId i = 0; i < model.app->num_tasks(); ++i) {
        theta += overlap_nonpreemptive(model.app->task(i).comp, w.est[i], w.lct[i],
                                       points[l], points[k]);
      }
      best.update(theta, points[k] - points[l]);
    }
  }
  out.processors = best.best().ceil();
  return out;
}

}  // namespace rtlb
