#include "src/baselines/makespan_bound.hpp"

#include <algorithm>

#include "src/core/overlap.hpp"

namespace rtlb {

namespace {

/// Max interval excess ceil((Theta - m*w)/m) over the candidate intervals of
/// one block of tasks, using preemptive overlap (valid for both task kinds).
Time block_excess(const std::vector<Time>& comp, const std::vector<Time>& est,
                  const std::vector<Time>& lct, const std::vector<TaskId>& block, int m) {
  std::vector<Time> points;
  points.reserve(block.size() * 2);
  for (TaskId i : block) {
    points.push_back(est[i]);
    points.push_back(lct[i]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  Time worst = 0;
  for (std::size_t l = 0; l + 1 < points.size(); ++l) {
    for (std::size_t k = l + 1; k < points.size(); ++k) {
      Time theta = 0;
      for (TaskId i : block) {
        theta += overlap_preemptive(comp[i], est[i], lct[i], points[l], points[k]);
      }
      const Time excess = theta - static_cast<Time>(m) * (points[k] - points[l]);
      if (excess > 0) worst = std::max(worst, ceil_div(excess, m));
    }
  }
  return worst;
}

}  // namespace

MakespanBound makespan_lower_bound(const Application& app, int m) {
  RTLB_CHECK(m >= 1, "makespan bound needs at least one processor");
  MakespanBound out;
  const std::size_t n = app.num_tasks();
  if (n == 0) return out;

  std::vector<Time> comp(n);
  Time total = 0;
  for (TaskId i = 0; i < n; ++i) {
    comp[i] = app.task(i).comp;
    total += comp[i];
  }
  const std::vector<Time> into = app.dag().longest_path_to(comp);
  const std::vector<Time> outof = app.dag().longest_path_from(comp);
  out.critical_time = *std::max_element(into.begin(), into.end());
  out.work_bound = ceil_div(total, m);

  // Windows anchored at the critical time.
  std::vector<Time> est(n), lct(n);
  for (TaskId i = 0; i < n; ++i) {
    est[i] = into[i] - comp[i];
    lct[i] = out.critical_time - (outof[i] - comp[i]);
  }

  // Fernandez-Bussell: one global excess maximization.
  std::vector<TaskId> all(n);
  for (TaskId i = 0; i < n; ++i) all[i] = i;
  out.fb_bound = std::max(out.work_bound,
                          out.critical_time + block_excess(comp, est, lct, all, m));

  // Jain-Rajaraman: section at window boundaries (the ancestor of the
  // paper's Figure-4 partitioning); per-section excesses accumulate because
  // a delay in one section pushes every later section wholesale.
  std::sort(all.begin(), all.end(), [&](TaskId a, TaskId b) {
    if (est[a] != est[b]) return est[a] < est[b];
    return a < b;
  });
  Time total_excess = 0;
  std::vector<TaskId> block;
  Time block_finish = kTimeMin;
  auto flush = [&] {
    if (!block.empty()) total_excess += block_excess(comp, est, lct, block, m);
    block.clear();
  };
  for (TaskId i : all) {
    if (!block.empty() && est[i] >= block_finish) flush();
    block.push_back(i);
    block_finish = std::max(block_finish, lct[i]);
  }
  flush();
  out.jr_bound = std::max(out.work_bound, out.critical_time + total_excess);
  return out;
}

}  // namespace rtlb
