#include "src/baselines/fernandez_bussell.hpp"

#include <algorithm>

#include "src/common/ratio.hpp"
#include "src/core/overlap.hpp"

namespace rtlb {

FernandezBussellResult fernandez_bussell_bound(const Application& app, Time horizon) {
  FernandezBussellResult out;
  const std::size_t n = app.num_tasks();
  if (n == 0) return out;

  // Windows from precedence alone (zero communication, no releases):
  // E_i = longest path into i (exclusive), L_i = horizon - longest path out
  // of i (exclusive of i's own computation on the "into" side).
  std::vector<Time> comp(n);
  for (TaskId i = 0; i < n; ++i) comp[i] = app.task(i).comp;
  const std::vector<Time> into = app.dag().longest_path_to(comp);    // inclusive of i
  const std::vector<Time> outof = app.dag().longest_path_from(comp); // inclusive of i

  out.critical_time = *std::max_element(into.begin(), into.end());
  out.horizon = std::max(horizon, out.critical_time);

  std::vector<Time> est(n), lct(n);
  for (TaskId i = 0; i < n; ++i) {
    est[i] = into[i] - comp[i];
    lct[i] = out.horizon - (outof[i] - comp[i]);
  }

  // Their load-density bound: peak over candidate intervals of the minimum
  // work that must fall inside, using the preemptive (split-around) overlap
  // -- F-B derive it from earliest/latest schedules, which is the same
  // quantity.
  std::vector<Time> points;
  points.reserve(2 * n);
  for (TaskId i = 0; i < n; ++i) {
    points.push_back(est[i]);
    points.push_back(lct[i]);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  MaxRatio best;
  for (std::size_t l = 0; l + 1 < points.size(); ++l) {
    for (std::size_t k = l + 1; k < points.size(); ++k) {
      Time theta = 0;
      for (TaskId i = 0; i < n; ++i) {
        theta += overlap_preemptive(comp[i], est[i], lct[i], points[l], points[k]);
      }
      best.update(theta, points[k] - points[l]);
    }
  }
  out.processors = best.best().ceil();
  return out;
}

}  // namespace rtlb
