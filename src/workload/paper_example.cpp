#include "src/workload/paper_example.hpp"

namespace rtlb {

namespace {

// The instance in the text format (also a worked example of src/model/io).
//
// Costs: the paper leaves CostR/CostN symbolic; these concrete values keep
// the step-4 optimum at x = (2,1,2) for any CostN(1) > CostN(2) > 0, which
// the paper's solution presumes.
constexpr const char* kInstanceText = R"(
# --- Section 8 example: resources --------------------------------------
proctype P1 cost 5
proctype P2 cost 7
resource r1 cost 4

# --- tasks: comp / release / deadline / processor / resources ----------
# Deadlines: tasks 12-14 carry 30, task 15 carries 36; all others default 36.
# Releases: tasks 3, 7, 11 carry 3, 10, 20; all others 0.
task T1  comp 3 rel 0  deadline 36 proc P1 res r1
task T2  comp 6 rel 0  deadline 36 proc P1 res r1
task T3  comp 3 rel 3  deadline 36 proc P1
task T4  comp 5 rel 0  deadline 36 proc P1
task T5  comp 7 rel 0  deadline 36 proc P1 res r1
task T6  comp 4 rel 0  deadline 36 proc P2
task T7  comp 6 rel 10 deadline 36 proc P2
task T8  comp 5 rel 0  deadline 36 proc P2
task T9  comp 3 rel 0  deadline 36 proc P1
task T10 comp 8 rel 0  deadline 36 proc P1 res r1
task T11 comp 2 rel 20 deadline 36 proc P1
task T12 comp 5 rel 0  deadline 30 proc P1
task T13 comp 6 rel 0  deadline 30 proc P1 res r1
task T14 comp 5 rel 0  deadline 30 proc P1 res r1
task T15 comp 6 rel 0  deadline 36 proc P1 res r1

# --- precedence edges with message sizes --------------------------------
edge T1  T4  msg 2
edge T2  T5  msg 1
edge T2  T6  msg 5
edge T3  T6  msg 5
edge T4  T7  msg 2
edge T4  T8  msg 10
edge T5  T8  msg 3
edge T5  T9  msg 9
edge T6  T9  msg 1
edge T7  T10 msg 6
edge T8  T12 msg 2
edge T9  T13 msg 5
edge T9  T14 msg 7
edge T9  T15 msg 4
edge T10 T15 msg 5
edge T11 T15 msg 9

# --- dedicated node menu: Lambda = { {P1,r1}, {P1}, {P2} } ---------------
node N1 cost 10 proc P1 res r1:1
node N2 cost 6  proc P1
node N3 cost 8  proc P2
)";

}  // namespace

ProblemInstance paper_example() { return parse_instance_string(kInstanceText); }

ExpectedWindows paper_expected_windows() {
  // Table 1 with three corrections (EXPERIMENTS.md gives the derivations):
  //  * L_11 = 30, not 35: any merge/no-merge choice over Succ_11 = {15}
  //    yields at most lst({15}) = L_15 - C_15 = 30, and the paper's own
  //    step-2 partition requires L_11 <= 30;
  //  * E_12 = 25, not 30: the printed row would give task 12 the empty
  //    window [30, 30] (its computation time cannot be 0); emr through the
  //    T8 -> T12 edge consistent with lms_12 = L_8 = 23 gives 25;
  //  * both values keep every bound of steps 2-4 unchanged.
  return ExpectedWindows{
      /*est*/ {0, 0, 3, 3, 6, 11, 10, 18, 16, 22, 20, 25, 19, 19, 30},
      /*lct*/ {3, 6, 6, 8, 15, 15, 16, 23, 19, 30, 30, 30, 30, 30, 36},
  };
}

ExpectedBounds paper_expected_bounds() { return {}; }

ExpectedCost paper_expected_cost() { return {}; }

}  // namespace rtlb
