#include "src/workload/characterize.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/table.hpp"

namespace rtlb {

WorkloadProfile characterize(const Application& app, const TaskWindows& windows) {
  WorkloadProfile out;
  out.tasks = app.num_tasks();
  out.edges = app.dag().num_edges();
  if (out.tasks == 0) return out;

  const auto levels = app.dag().levels();
  std::vector<std::size_t> level_width(*std::max_element(levels.begin(), levels.end()) + 1, 0);
  for (std::uint32_t lvl : levels) ++level_width[lvl];
  out.depth = level_width.size();
  out.width = *std::max_element(level_width.begin(), level_width.end());

  Time total_comp = 0, total_msg = 0;
  std::vector<Time> laxity_pct;
  out.min_slack = kTimeMax;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    total_comp += t.comp;
    const Time window = windows.lct[i] - windows.est[i];
    out.min_slack = std::min(out.min_slack, window - t.comp);
    laxity_pct.push_back(window * 100 / t.comp);
    for (TaskId j : app.successors(i)) total_msg += app.message(i, j);
  }
  out.ccr_pct = total_comp > 0 ? static_cast<int>(total_msg * 100 / total_comp) : 0;
  std::sort(laxity_pct.begin(), laxity_pct.end());
  out.median_laxity_pct = static_cast<int>(laxity_pct[laxity_pct.size() / 2]);

  for (ResourceId r : app.resource_set()) {
    ResourceLoad load;
    load.resource = r;
    Time lo = kTimeMax, hi = kTimeMin;
    for (TaskId i : app.tasks_using(r)) {
      ++load.tasks;
      load.work += app.task(i).comp;
      lo = std::min(lo, windows.est[i]);
      hi = std::max(hi, windows.lct[i]);
    }
    load.span = load.tasks > 0 ? hi - lo : 0;
    load.utilization_pct =
        load.span > 0 ? static_cast<int>(load.work * 100 / load.span) : 0;
    out.loads.push_back(load);
  }
  return out;
}

std::string format_profile(const Application& app, const WorkloadProfile& profile) {
  std::ostringstream out;
  out << profile.tasks << " tasks, " << profile.edges << " edges, depth " << profile.depth
      << ", width " << profile.width << ", CCR " << profile.ccr_pct << "%, median laxity "
      << profile.median_laxity_pct << "%, min slack " << profile.min_slack << "\n";
  Table t({"resource", "tasks", "work", "span", "utilization %"});
  for (const ResourceLoad& load : profile.loads) {
    t.add(app.catalog().name(load.resource), load.tasks, load.work, load.span,
          load.utilization_pct);
  }
  out << t.to_string();
  return out.str();
}

}  // namespace rtlb
