#include "src/workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "src/workload/workload.hpp"

namespace rtlb {

namespace {

Dag make_graph(Rng& rng, const WorkloadParams& p) {
  switch (p.shape) {
    case GraphShape::Layered:
      return layered_dag(rng, p.num_tasks, std::min(p.num_layers, p.num_tasks), p.edge_prob);
    case GraphShape::Random:
      return random_dag(rng, p.num_tasks, p.edge_prob);
    case GraphShape::ForkJoin: {
      // Closest width/depth split with ~num_tasks vertices.
      const std::size_t width = std::max<std::size_t>(1, p.num_tasks / 4);
      const std::size_t depth = std::max<std::size_t>(1, (p.num_tasks - 2) / width);
      return fork_join(width, depth);
    }
    case GraphShape::SeriesParallel:
      return series_parallel(rng, std::max<std::size_t>(2, p.num_tasks));
    case GraphShape::Pipeline:
      return pipeline(p.num_tasks);
    case GraphShape::OutTree:
      return out_tree(p.num_tasks, 3);
  }
  throw ModelError("unknown graph shape");
}

/// Node-type menu over the (flat or lowered) tasks of `inst`: per processor
/// type a bare node, a node per distinct task resource-set, and one "full"
/// node carrying every resource its tasks touch. Node cost = processor cost
/// + resource costs.
void derive_menu(ProblemInstance& inst, const std::vector<ResourceId>& procs) {
  const std::size_t n = inst.app->num_tasks();
  for (ResourceId proc : procs) {
    std::set<std::vector<ResourceId>> combos;
    std::vector<ResourceId> all_used;
    bool proc_used = false;
    for (TaskId i = 0; i < n; ++i) {
      const Task& t = inst.app->task(i);
      if (t.proc != proc) continue;
      proc_used = true;
      combos.insert(t.resources);
      all_used.insert(all_used.end(), t.resources.begin(), t.resources.end());
    }
    if (!proc_used) continue;
    std::sort(all_used.begin(), all_used.end());
    all_used.erase(std::unique(all_used.begin(), all_used.end()), all_used.end());
    combos.insert({});        // bare node
    combos.insert(all_used);  // full node
    int serial = 0;
    for (const auto& combo : combos) {
      NodeType node;
      node.name = "N_" + inst.catalog->name(proc) + "_" + std::to_string(++serial);
      node.proc = proc;
      node.cost = inst.catalog->cost(proc);
      for (ResourceId r : combo) {
        node.resources.emplace_back(r, 1);
        node.cost += inst.catalog->cost(r);
      }
      inst.platform.add_node_type(std::move(node));
    }
  }
}

}  // namespace

ProblemInstance generate_workload(const WorkloadParams& p) {
  RTLB_CHECK(p.laxity >= 1.0, "laxity must be >= 1");
  RTLB_CHECK(p.num_proc_types >= 1, "need at least one processor type");
  Rng rng(p.seed);

  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();

  std::vector<ResourceId> procs, resources;
  for (std::size_t k = 0; k < p.num_proc_types; ++k) {
    procs.push_back(inst.catalog->add_processor_type(
        "P" + std::to_string(k + 1), rng.uniform(p.proc_cost_min, p.proc_cost_max)));
  }
  for (std::size_t k = 0; k < p.num_resources; ++k) {
    resources.push_back(inst.catalog->add_resource(
        "r" + std::to_string(k + 1), rng.uniform(p.res_cost_min, p.res_cost_max)));
  }

  inst.app = std::make_unique<Application>(*inst.catalog);
  const Dag graph = make_graph(rng, p);
  const std::size_t n = graph.num_vertices();

  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "T" + std::to_string(i + 1);
    t.comp = rng.uniform(p.comp_min, p.comp_max);
    t.proc = procs[rng.index(procs.size())];
    for (ResourceId r : resources) {
      if (rng.chance(p.resource_prob)) t.resources.push_back(r);
    }
    t.preemptive = rng.chance(p.preemptive_prob);
    t.deadline = kTimeMax;  // assigned below
    inst.app->add_task(std::move(t));
  }
  {
    // Draw raw message sizes, then optionally rescale to the target CCR.
    std::vector<std::tuple<std::uint32_t, std::uint32_t, Time>> edges;
    Time total_msg = 0, total_comp = 0;
    for (std::uint32_t u = 0; u < n; ++u) total_comp += inst.app->task(u).comp;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v : graph.successors(u)) {
        Time m = rng.uniform(p.msg_min, p.msg_max);
        if (p.ccr > 0 && m == 0) m = 1;  // give the scaler something to scale
        edges.emplace_back(u, v, m);
        total_msg += m;
      }
    }
    if (p.ccr > 0 && total_msg > 0) {
      const double scale = p.ccr * static_cast<double>(total_comp) /
                           static_cast<double>(total_msg);
      for (auto& [u, v, m] : edges) {
        m = std::max<Time>(0, static_cast<Time>(std::llround(scale * static_cast<double>(m))));
      }
    }
    for (const auto& [u, v, m] : edges) inst.app->add_edge(u, v, m);
  }

  // Earliest completion with unlimited resources (messages included), used
  // to anchor releases and deadlines.
  auto topo = inst.app->dag().topological_order();
  RTLB_CHECK(topo.has_value(), "generated graph must be acyclic");
  std::vector<Time> earliest(n, 0);
  Time critical = 0;
  for (TaskId i : *topo) {
    Time start = 0;
    for (TaskId j : inst.app->predecessors(i)) {
      start = std::max(start, earliest[j] + inst.app->message(j, i));
    }
    earliest[i] = start + inst.app->task(i).comp;
    critical = std::max(critical, earliest[i]);
  }

  // Releases on sources, then recompute earliest completions with them.
  if (p.release_spread > 0) {
    const Time spread = static_cast<Time>(std::llround(p.release_spread * critical));
    for (TaskId i = 0; i < n; ++i) {
      if (inst.app->predecessors(i).empty() && spread > 0) {
        inst.app->task(i).release = rng.uniform(0, spread);
      }
    }
    for (TaskId i : *topo) {
      Time start = inst.app->task(i).release;
      for (TaskId j : inst.app->predecessors(i)) {
        start = std::max(start, earliest[j] + inst.app->message(j, i));
      }
      earliest[i] = start + inst.app->task(i).comp;
    }
  }

  for (TaskId i = 0; i < n; ++i) {
    inst.app->task(i).deadline =
        static_cast<Time>(std::llround(p.laxity * static_cast<double>(earliest[i])));
  }
  inst.app->validate();

  derive_menu(inst, procs);
  return inst;
}

ProblemInstance generate_recurrent_instance(const WorkloadParams& p, ReleaseKind kind) {
  RTLB_CHECK(p.laxity >= 1.0, "laxity must be >= 1");
  RTLB_CHECK(p.num_proc_types >= 1, "need at least one processor type");
  RTLB_CHECK(p.num_tasks >= 1, "need at least one task");
  Rng rng(p.seed);

  ProblemInstance inst;
  inst.catalog = std::make_unique<ResourceCatalog>();

  std::vector<ResourceId> procs, resources;
  for (std::size_t k = 0; k < p.num_proc_types; ++k) {
    procs.push_back(inst.catalog->add_processor_type(
        "P" + std::to_string(k + 1), rng.uniform(p.proc_cost_min, p.proc_cost_max)));
  }
  for (std::size_t k = 0; k < p.num_resources; ++k) {
    resources.push_back(inst.catalog->add_resource(
        "r" + std::to_string(k + 1), rng.uniform(p.res_cost_min, p.res_cost_max)));
  }
  inst.app = std::make_unique<Application>(*inst.catalog);

  // num_tasks is the TEMPLATE budget, split over a few transactions; the
  // lowered instance is larger by the activation counts (<= 4x periodic,
  // <= 8x sporadic -- the harmonic construction below bounds both).
  const std::size_t num_transactions =
      std::clamp<std::size_t>(p.num_tasks / 6, 1, 4);
  const std::size_t share = std::max<std::size_t>(2, p.num_tasks / num_transactions);

  std::vector<Time> critical(num_transactions, 0);
  std::vector<int> harmonic_step(num_transactions, 0);
  for (std::size_t x = 0; x < num_transactions; ++x) {
    WorkloadParams sub = p;
    sub.num_tasks = share;
    const Dag graph = make_graph(rng, sub);
    const std::size_t n = graph.num_vertices();

    Transaction tr;
    tr.name = "X" + std::to_string(x + 1);
    tr.kind = kind;
    for (std::size_t i = 0; i < n; ++i) {
      TemplateTask t;
      t.name = "T" + std::to_string(i + 1);
      t.comp = rng.uniform(p.comp_min, p.comp_max);
      t.proc = procs[rng.index(procs.size())];
      for (ResourceId r : resources) {
        if (rng.chance(p.resource_prob)) t.resources.push_back(r);
      }
      t.preemptive = rng.chance(p.preemptive_prob);
      tr.tasks.push_back(std::move(t));
    }
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v : graph.successors(u)) {
        TemplateEdge e;
        e.from = u;
        e.to = v;
        e.msg = rng.uniform(p.msg_min, p.msg_max);
        tr.edges.push_back(e);
      }
    }

    // Template critical path (messages included): the slot length every
    // activation needs with unlimited resources.
    const std::optional<std::vector<std::uint32_t>> topo = graph.topological_order();
    RTLB_CHECK(topo.has_value(), "generated template must be acyclic");
    std::vector<Time> earliest(n, 0);
    for (std::uint32_t i : *topo) {
      Time start = 0;
      for (std::uint32_t j : graph.predecessors(i)) {
        Time msg = 0;
        for (const TemplateEdge& e : tr.edges) {
          if (e.from == j && e.to == i) msg = e.msg;
        }
        start = std::max(start, earliest[j] + msg);
      }
      earliest[i] = start + tr.tasks[i].comp;
      critical[x] = std::max(critical[x], earliest[i]);
    }

    harmonic_step[x] = static_cast<int>(rng.uniform(0, 2));
    inst.workload.transactions.push_back(std::move(tr));
  }

  // Harmonic periods P_x = base << step_x with base chosen so every
  // laxity-scaled critical path fits its own period: the hyperperiod is
  // base << 2 regardless of the step draws, and every template window can
  // hold its tasks (deadline defaults to end-of-slot).
  Time base = 1;
  for (std::size_t x = 0; x < num_transactions; ++x) {
    const Time scaled =
        static_cast<Time>(std::llround(p.laxity * static_cast<double>(critical[x])));
    const Time step = Time{1} << harmonic_step[x];
    base = std::max(base, (scaled + step - 1) / step);
  }
  Time max_period = 1;
  for (std::size_t x = 0; x < num_transactions; ++x) {
    Transaction& tr = inst.workload.transactions[x];
    tr.period = base << harmonic_step[x];
    max_period = std::max(max_period, tr.period);
  }
  for (Transaction& tr : inst.workload.transactions) {
    tr.offset = tr.period >= 8 ? rng.uniform(Time{0}, tr.period / 8) : 0;
    if (kind == ReleaseKind::kSporadic) tr.horizon = 2 * max_period;
  }

  lower_instance(inst);  // templates are lint-clean by construction
  derive_menu(inst, procs);
  return inst;
}

}  // namespace rtlb
