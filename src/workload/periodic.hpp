// Periodic applications unrolled over the hyperperiod.
//
// The paper analyzes a single activation of the task graph; real-time
// control software is periodic. This module models a set of periodic
// transactions -- each a small DAG template with a period and offset,
// releasing one instance per period and due by the end of it (or an
// explicit relative deadline) -- and UNROLLS them over the hyperperiod
// (LCM of the periods) into a plain Application the Section 3-7 analysis
// accepts unchanged.
//
// Because every instance's window lies inside its own period slot, the
// unrolled task set is exactly the phased shape Section 5's partitioning
// exploits: each busy slot becomes a partition block (see bench_periodic).
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

/// One task of a transaction template (vertex of the per-period DAG).
struct PeriodicTask {
  std::string name;  // instance k becomes "<name>@k"
  Time comp = 1;
  /// Offset of this task's release within the period (>= 0).
  Time offset = 0;
  /// Deadline relative to the period start; 0 means "end of period".
  Time relative_deadline = 0;
  ResourceId proc = kInvalidResource;
  std::vector<ResourceId> resources;
  bool preemptive = false;
};

struct PeriodicEdge {
  std::size_t from = 0;  // indices into Transaction::tasks
  std::size_t to = 0;
  Time msg = 0;
};

/// A periodic transaction: a DAG template activated every `period` ticks
/// starting at `offset`.
struct Transaction {
  std::string name;
  Time period = 1;
  Time offset = 0;
  std::vector<PeriodicTask> tasks;
  std::vector<PeriodicEdge> edges;
};

/// lcm over the transactions' periods.
Time hyperperiod(const std::vector<Transaction>& transactions);

/// Unroll all transactions over [0, hyperperiod) into a flat Application.
/// Successive instances of the same transaction are chained head-to-head
/// with zero-size messages when `chain_instances` is set (instance k+1's
/// sources depend on instance k's sinks -- the usual "no self-overrun"
/// semantics).
Application unroll(const ResourceCatalog& catalog, const std::vector<Transaction>& transactions,
                   bool chain_instances = true);

/// Validate a transaction set: positive periods, offsets within the period,
/// template windows that can hold their tasks, acyclic templates.
void validate_transactions(const ResourceCatalog& catalog,
                           const std::vector<Transaction>& transactions);

}  // namespace rtlb
