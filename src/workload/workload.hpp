// Lowering recurrent workloads into the flat Application the Section 3-7
// machinery accepts (the algorithm HALF of the workload front door; the
// declaration types live in src/model/recurrent.hpp).
//
// The paper analyzes a single activation of the task graph; real-time
// control software is periodic or sporadic. This module lowers a Workload
// -- periodic transactions and sporadic DAGs -- over one shared hyperperiod
// into a plain Application:
//
//   * periodic: one instance per period slot over [0, H), H = lcm of the
//     periodic periods (overflow-CHECKED on Time: a co-prime pair of large
//     periods saturates and reports instead of silently wrapping);
//   * sporadic: the densest legal release sequence -- activations every
//     minimum-inter-arrival tick -- over the transaction's horizon (or the
//     periodic hyperperiod when no horizon is declared). Denser releases
//     only add demand, so the lowered instance is the worst case for every
//     lower bound in this repository: a resource/cost bound proved on it
//     holds for every legal sporadic arrival sequence.
//
// Lowering is DETERMINISTIC: transactions in declaration order, activations
// in slot order, template tasks in template order, instance k of task `t`
// of transaction `tr` named "<tr>.<t>@<k>". Two lowerings of equal
// workloads are byte-identical (tests/test_periodic.cpp pins this), which
// is what lets warm sessions compare a re-lowered application against the
// current one and skip the pipeline on a no-op template delta.
//
// Because every instance's window lies inside its own activation slot, the
// lowered task set is exactly the phased shape Section 5's partitioning
// exploits: each busy slot becomes a partition block (see bench_workloads).
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/io.hpp"
#include "src/model/platform.hpp"
#include "src/model/recurrent.hpp"

namespace rtlb {

// Compatibility spellings from the original periodic.hpp API.
using PeriodicTask = TemplateTask;
using PeriodicEdge = TemplateEdge;

// Hyperperiod / checked_hyperperiod live in src/model/recurrent.hpp (the
// lint layer needs them too and may not depend on workload/); re-exported
// here via the include above.

/// lcm over the periodic transactions' periods; throws ModelError when the
/// lcm overflows Time (use checked_hyperperiod() to saturate instead).
Time hyperperiod(const std::vector<Transaction>& transactions);

struct LowerOptions {
  /// Chain successive activations of one transaction head-to-head with
  /// zero-size messages (activation k+1's sources depend on activation k's
  /// sinks -- the usual "no self-overrun" semantics).
  bool chain_instances = true;
  /// Run validate_workload() / Application::validate() around the lowering.
  /// Tools that batch-lint broken inputs (rtlb_lint) set this false after
  /// having run lint_workload() themselves, so one bad template reports a
  /// diagnostic instead of throwing out of the whole batch.
  bool validate = true;
};

/// Validate a workload's templates: positive periods / inter-arrivals,
/// offsets within the period, constrained deadlines, windows that can hold
/// their tasks, acyclic templates, catalog-valid processor ids, bounded
/// sporadic horizons, and a representable hyperperiod. Throws ModelError on
/// the first violation. Delegates to the recurrent lint pass
/// (src/lint/recurrent.hpp) so this throwing path and the batching lint
/// gate can never drift apart.
void validate_workload(const ResourceCatalog& catalog, const Workload& workload);

/// Lower `workload` into a fresh flat Application (validates first).
Application lower_workload(const ResourceCatalog& catalog, const Workload& workload,
                           const LowerOptions& options = {});

/// Front door for parsed files: validate inst.workload and APPEND its
/// lowered instances to inst.app (no-op for flat instances). Lowered tasks
/// carry no SourceMap task lines -- fix-its stay anchored to the template
/// declarations, never to generated instances. Call after parse_instance()
/// and before analysis; tools that lint broken inputs instead run
/// lint_workload() themselves and lower only when the templates are clean.
void lower_instance(ProblemInstance& inst, const LowerOptions& options = {});

// -- Compatibility wrappers over the original periodic-only API. ----------

/// Unroll periodic transactions over [0, hyperperiod) into an Application.
Application unroll(const ResourceCatalog& catalog, const std::vector<Transaction>& transactions,
                   bool chain_instances = true);

/// validate_workload() over a plain transaction vector.
void validate_transactions(const ResourceCatalog& catalog,
                           const std::vector<Transaction>& transactions);

}  // namespace rtlb
