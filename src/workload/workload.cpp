#include "src/workload/workload.hpp"

#include "src/graph/dag.hpp"
#include "src/lint/recurrent.hpp"

namespace rtlb {

Time hyperperiod(const std::vector<Transaction>& transactions) {
  for (const Transaction& tr : transactions) {
    if (tr.kind == ReleaseKind::kPeriodic) {
      RTLB_CHECK(tr.period > 0, "transaction period must be positive");
    }
  }
  const Hyperperiod h = checked_hyperperiod(transactions);
  if (h.overflow) {
    throw ModelError("hyperperiod of the transaction periods overflows the Time range");
  }
  return h.value;
}

void validate_workload(const ResourceCatalog& catalog, const Workload& workload) {
  // Single source of truth: the recurrent lint pass produces the batch of
  // findings; this throwing path surfaces the first error (mirroring
  // Application::validate over the structural pass).
  const LintResult result = lint_workload(catalog, workload);
  for (const Diagnostic& d : result.diagnostics) {
    if (d.severity != Severity::kError) continue;
    throw ModelError(d.subject.empty() ? d.message : d.subject + ": " + d.message);
  }
}

namespace {

/// Activation count of one (validated) transaction within [0, horizon):
/// releases at offset + k*period for k = 0, 1, ... while strictly before
/// the horizon. For periodic transactions the horizon is the hyperperiod
/// and the count is exactly horizon / period.
Time activation_count(const Transaction& tr, Time horizon) {
  if (horizon <= tr.offset) return 0;
  return (horizon - tr.offset + tr.period - 1) / tr.period;
}

/// Append the lowered instances of every transaction to `app`. Assumes the
/// workload was validated.
void lower_into(const Workload& workload, Application& app, const LowerOptions& options) {
  const Hyperperiod h = checked_hyperperiod(workload.transactions);
  RTLB_CHECK(!h.overflow, "lowering a workload whose hyperperiod overflows");

  for (const Transaction& tr : workload.transactions) {
    const Time horizon = tr.kind == ReleaseKind::kSporadic && tr.horizon > 0
                             ? tr.horizon
                             : h.value;
    const Time instances = activation_count(tr, horizon);

    // Template topology, shared by every activation: the per-activation
    // edges plus (when chaining) the previous activation's sinks feeding
    // the current activation's sources.
    Dag graph(tr.tasks.size());
    for (const TemplateEdge& e : tr.edges) {
      graph.add_edge(static_cast<std::uint32_t>(e.from), static_cast<std::uint32_t>(e.to));
    }
    const std::vector<std::uint32_t> sources = graph.sources();
    const std::vector<std::uint32_t> sinks = graph.sinks();

    std::vector<TaskId> prev_instance;  // ids of the previous activation's tasks
    for (Time k = 0; k < instances; ++k) {
      const Time slot =
          tr.offset + static_cast<Time>(static_cast<__int128>(k) * tr.period);
      std::vector<TaskId> ids;
      ids.reserve(tr.tasks.size());
      for (const TemplateTask& t : tr.tasks) {
        Task inst;
        inst.name = tr.name + "." + t.name + "@" + std::to_string(k);
        inst.comp = t.comp;
        inst.release = slot + t.offset;
        inst.deadline = slot + (t.relative_deadline > 0 ? t.relative_deadline : tr.period);
        inst.proc = t.proc;
        inst.resources = t.resources;
        inst.preemptive = t.preemptive;
        ids.push_back(app.add_task(std::move(inst)));
      }
      for (const TemplateEdge& e : tr.edges) {
        app.add_edge(ids[e.from], ids[e.to], e.msg);
      }
      if (options.chain_instances && k > 0) {
        // Activation k may not start before activation k-1 finished: chain
        // the previous sinks to the current sources with zero-size messages.
        for (std::uint32_t sink : sinks) {
          for (std::uint32_t source : sources) {
            if (!app.dag().has_edge(prev_instance[sink], ids[source])) {
              app.add_edge(prev_instance[sink], ids[source], 0);
            }
          }
        }
      }
      prev_instance = std::move(ids);
    }
  }
}

}  // namespace

Application lower_workload(const ResourceCatalog& catalog, const Workload& workload,
                           const LowerOptions& options) {
  if (options.validate) validate_workload(catalog, workload);
  Application app(catalog);
  lower_into(workload, app, options);
  if (options.validate) app.validate();
  return app;
}

void lower_instance(ProblemInstance& inst, const LowerOptions& options) {
  if (inst.workload.empty()) return;
  if (options.validate) validate_workload(*inst.catalog, inst.workload);
  lower_into(inst.workload, *inst.app, options);
  if (options.validate) inst.app->validate();
}

Application unroll(const ResourceCatalog& catalog, const std::vector<Transaction>& transactions,
                   bool chain_instances) {
  Workload workload;
  workload.transactions = transactions;
  LowerOptions options;
  options.chain_instances = chain_instances;
  return lower_workload(catalog, workload, options);
}

void validate_transactions(const ResourceCatalog& catalog,
                           const std::vector<Transaction>& transactions) {
  Workload workload;
  workload.transactions = transactions;
  validate_workload(catalog, workload);
}

}  // namespace rtlb
