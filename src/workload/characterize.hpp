// Workload characterization -- the cheap screening numbers a designer reads
// before (and alongside) the full lower-bound analysis: per-resource
// utilization of the active span, normalized laxity, graph shape metrics,
// and communication pressure. Also used by the benches to describe the
// synthetic populations they sweep.
#pragma once

#include <string>
#include <vector>

#include "src/core/est_lct.hpp"
#include "src/model/application.hpp"

namespace rtlb {

struct ResourceLoad {
  ResourceId resource = kInvalidResource;
  /// Tasks in ST_r.
  std::size_t tasks = 0;
  /// Total computation demand on r.
  Time work = 0;
  /// Union of the tasks' windows [min E, max L].
  Time span = 0;
  /// work / span as a percentage (integer, floor). 100+ means the resource
  /// provably needs more than one unit.
  int utilization_pct = 0;
};

struct WorkloadProfile {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  /// Longest path length in tasks (graph depth).
  std::size_t depth = 0;
  /// max tasks on one depth level (a cheap width proxy).
  std::size_t width = 0;
  /// Communication-to-computation ratio x100 (total message ticks / total
  /// computation ticks).
  int ccr_pct = 0;
  /// min over tasks of (window - comp) -- 0 means some task has no slack;
  /// negative means provably infeasible.
  Time min_slack = 0;
  /// median of per-task (window / comp), x100.
  int median_laxity_pct = 0;
  std::vector<ResourceLoad> loads;
};

/// Profile `app` using the given windows (from compute_windows).
WorkloadProfile characterize(const Application& app, const TaskWindows& windows);

/// Render the profile as readable text.
std::string format_profile(const Application& app, const WorkloadProfile& profile);

}  // namespace rtlb
