#include "src/workload/periodic.hpp"

#include <numeric>

#include "src/graph/dag.hpp"

namespace rtlb {

Time hyperperiod(const std::vector<Transaction>& transactions) {
  Time h = 1;
  for (const Transaction& tr : transactions) {
    RTLB_CHECK(tr.period > 0, "transaction period must be positive");
    h = std::lcm(h, tr.period);
  }
  return h;
}

void validate_transactions(const ResourceCatalog& catalog,
                           const std::vector<Transaction>& transactions) {
  for (const Transaction& tr : transactions) {
    auto where = [&] { return "transaction '" + tr.name + "'"; };
    if (tr.period <= 0) throw ModelError(where() + ": period must be positive");
    if (tr.offset < 0 || tr.offset >= tr.period) {
      throw ModelError(where() + ": offset must lie in [0, period)");
    }
    if (tr.tasks.empty()) throw ModelError(where() + ": has no tasks");
    Dag graph(tr.tasks.size());
    for (const PeriodicEdge& e : tr.edges) {
      if (e.from >= tr.tasks.size() || e.to >= tr.tasks.size()) {
        throw ModelError(where() + ": edge endpoint out of range");
      }
      graph.add_edge(static_cast<std::uint32_t>(e.from), static_cast<std::uint32_t>(e.to));
      if (e.msg < 0) throw ModelError(where() + ": negative message size");
    }
    if (!graph.is_acyclic()) throw ModelError(where() + ": template has a cycle");
    for (const PeriodicTask& t : tr.tasks) {
      if (t.comp <= 0) throw ModelError(where() + "/" + t.name + ": comp must be positive");
      if (t.offset < 0 || t.offset >= tr.period) {
        throw ModelError(where() + "/" + t.name + ": offset outside the period");
      }
      const Time deadline = t.relative_deadline > 0 ? t.relative_deadline : tr.period;
      if (deadline > tr.period) {
        throw ModelError(where() + "/" + t.name +
                         ": relative deadline beyond the period (constrained-deadline "
                         "model only)");
      }
      if (deadline - t.offset < t.comp) {
        throw ModelError(where() + "/" + t.name + ": window cannot hold the task");
      }
      if (t.proc == kInvalidResource || t.proc >= catalog.size() ||
          !catalog.is_processor(t.proc)) {
        throw ModelError(where() + "/" + t.name + ": invalid processor type");
      }
    }
  }
}

Application unroll(const ResourceCatalog& catalog, const std::vector<Transaction>& transactions,
                   bool chain_instances) {
  validate_transactions(catalog, transactions);
  const Time h = hyperperiod(transactions);

  Application app(catalog);
  for (const Transaction& tr : transactions) {
    const Time instances = h / tr.period;
    std::vector<TaskId> prev_instance;  // ids of the previous instance's tasks
    for (Time k = 0; k < instances; ++k) {
      const Time slot = tr.offset + k * tr.period;
      std::vector<TaskId> ids;
      ids.reserve(tr.tasks.size());
      for (const PeriodicTask& t : tr.tasks) {
        Task inst;
        inst.name = tr.name + "." + t.name + "@" + std::to_string(k);
        inst.comp = t.comp;
        inst.release = slot + t.offset;
        inst.deadline = slot + (t.relative_deadline > 0 ? t.relative_deadline : tr.period);
        inst.proc = t.proc;
        inst.resources = t.resources;
        inst.preemptive = t.preemptive;
        ids.push_back(app.add_task(std::move(inst)));
      }
      for (const PeriodicEdge& e : tr.edges) {
        app.add_edge(ids[e.from], ids[e.to], e.msg);
      }
      if (chain_instances && k > 0) {
        // Instance k may not start before instance k-1 finished: chain the
        // previous sinks to the current sources with zero-size messages.
        Dag graph(tr.tasks.size());
        for (const PeriodicEdge& e : tr.edges) {
          graph.add_edge(static_cast<std::uint32_t>(e.from),
                         static_cast<std::uint32_t>(e.to));
        }
        for (std::uint32_t sink : graph.sinks()) {
          for (std::uint32_t source : graph.sources()) {
            if (!app.dag().has_edge(prev_instance[sink], ids[source])) {
              app.add_edge(prev_instance[sink], ids[source], 0);
            }
          }
        }
      }
      prev_instance = std::move(ids);
    }
  }
  app.validate();
  return app;
}

}  // namespace rtlb
