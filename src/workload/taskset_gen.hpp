// Synthetic task-set generation.
//
// The paper evaluates on a hand-built 15-task example; the benches in this
// repository additionally sweep over families of random task sets. A
// generated workload annotates a random DAG with every constraint kind of
// Section 2.1 (computation times, releases, deadlines, processor types,
// resource sets, message sizes, preemptability) and derives a dedicated-model
// node-type menu that can host every task.
//
// Deadlines are assigned as `laxity` times each task's unlimited-resource
// earliest completion (so every instance admits SOME window; small laxity
// makes tight instances, large laxity loose ones).
#pragma once

#include <memory>

#include "src/common/random.hpp"
#include "src/graph/generators.hpp"
#include "src/model/application.hpp"
#include "src/model/io.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

enum class GraphShape {
  Layered,
  Random,
  ForkJoin,
  SeriesParallel,
  Pipeline,
  OutTree,
};

struct WorkloadParams {
  std::uint64_t seed = 1;
  GraphShape shape = GraphShape::Layered;
  std::size_t num_tasks = 20;
  std::size_t num_layers = 5;    // Layered shape
  double edge_prob = 0.3;        // Layered / Random shapes

  Time comp_min = 1;
  Time comp_max = 10;
  Time msg_min = 0;
  Time msg_max = 5;

  /// Communication-to-computation ratio. When > 0, message sizes are
  /// rescaled after generation so that (total message ticks) / (total
  /// computation ticks) ~ ccr -- the standard knob of the DAG-scheduling
  /// literature. 0 leaves the raw [msg_min, msg_max] draws untouched.
  double ccr = 0.0;

  std::size_t num_proc_types = 2;
  std::size_t num_resources = 2;
  /// Independent probability that a task needs each resource.
  double resource_prob = 0.4;

  /// Deadline multiplier over the earliest-completion critical path (>= 1).
  double laxity = 2.0;
  /// Source releases drawn from [0, release_spread * critical_path].
  double release_spread = 0.0;
  double preemptive_prob = 0.0;

  Cost proc_cost_min = 5, proc_cost_max = 20;
  Cost res_cost_min = 1, res_cost_max = 10;
};

/// A generated problem instance (same ownership shape as parse_instance).
ProblemInstance generate_workload(const WorkloadParams& params);

/// Recurrent counterpart: a small set of transaction templates (each a
/// `shape`-shaped DAG of roughly num_tasks / #transactions tasks) with
/// HARMONIC periods P_t = base * 2^g, g in {0,1,2}, where base is the
/// smallest value putting every template's laxity-scaled critical path
/// inside its period -- so templates are lint-clean by construction and the
/// shared hyperperiod is at most 4 * base (the lowered instance stays within
/// ~4x num_tasks). With ReleaseKind::kSporadic every transaction recurs by
/// minimum inter-arrival P_t over an explicit horizon of twice the largest
/// P_t. The result carries BOTH the templates (inst.workload) and their
/// lowered instances (inst.app), plus the same derived node-type menu as
/// generate_workload. `params.ccr` is ignored (messages stay raw draws).
ProblemInstance generate_recurrent_instance(const WorkloadParams& params, ReleaseKind kind);

}  // namespace rtlb
