// The 15-task illustrative example of Section 8 (Figure 7), reconstructed.
//
// The paper gives Figure 7 only as a drawing; the exact edge set and several
// task parameters are not in the text. This reconstruction was derived from
// every number the text DOES state and reproduces, when run through the
// analysis:
//   * all lms/emr arithmetic spelled out in Section 8
//     (lms_15 = 36-6-4, lms_14 = 30-5-7, lms_13 = 30-6-5, lms_9 = 19-3-9,
//      lms_8 = 23-5-3, lst({14}) = 25, lst({14,13}) = 19, ...);
//   * the Table-1 window values E_i and L_i (three entries of the printed
//     table are internally inconsistent and corrected here -- see
//     ExpectedWindows below and EXPERIMENTS.md);
//   * the step-2 partition of ST_r1 exactly, and the step-3 interval demands
//     Theta(P1,0,3)=6, Theta(P1,3,6)=9, Theta(P1,3,8)=11;
//   * the step-3 bounds LB_P1=3, LB_P2=2, LB_r1=2;
//   * the step-4 dedicated ILP solution x = (2,1,2).
#pragma once

#include "src/model/io.hpp"

namespace rtlb {

/// Build the reconstructed instance: application, catalog (P1, P2, r1 with
/// illustrative costs), and the dedicated node menu
/// Lambda = { {P1,r1}, {P1}, {P2} }.
ProblemInstance paper_example();

/// The values our reconstruction must reproduce (Table 1 with the paper's
/// three typos corrected; see EXPERIMENTS.md for the correction argument).
struct ExpectedWindows {
  Time est[15];
  Time lct[15];
};
ExpectedWindows paper_expected_windows();

/// The paper's final step-3 bounds.
struct ExpectedBounds {
  std::int64_t lb_p1 = 3;
  std::int64_t lb_p2 = 2;
  std::int64_t lb_r1 = 2;
};
ExpectedBounds paper_expected_bounds();

/// The paper's step-4 dedicated ILP minimizer (units of {P1,r1}, {P1}, {P2}).
struct ExpectedCost {
  std::int64_t x1 = 2;
  std::int64_t x2 = 1;
  std::int64_t x3 = 2;
};
ExpectedCost paper_expected_cost();

}  // namespace rtlb
