#include "src/common/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rtlb {

bool atomic_write_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return buf.str();
}

}  // namespace rtlb
