#include "src/common/json.hpp"

#include <cmath>
#include <cstdio>

#include "src/common/types.hpp"

namespace rtlb {

Json& Json::set(std::string key, Json value) {
  RTLB_CHECK(is_object(), "Json::set on a non-object");
  std::get<Members>(value_).emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  RTLB_CHECK(is_array(), "Json::push on a non-array");
  std::get<Elements>(value_).push_back(std::move(value));
  return *this;
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? "\n" + std::string(indent * (depth + 1), ' ') : "";
  const std::string pad_close = indent > 0 ? "\n" + std::string(indent * depth, ' ') : "";
  const char* sep = indent > 0 ? ": " : ":";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const std::int64_t* n = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*n);
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    escape_to(out, *s);
  } else if (const Members* m = std::get_if<Members>(&value_)) {
    if (m->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *m) {
      if (!first) out += ',';
      first = false;
      out += pad;
      escape_to(out, key);
      out += sep;
      value.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += '}';
  } else if (const Elements* e = std::get_if<Elements>(&value_)) {
    if (e->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& value : *e) {
      if (!first) out += ',';
      first = false;
      out += pad;
      value.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace rtlb
