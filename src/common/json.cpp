#include "src/common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/types.hpp"

namespace rtlb {

Json& Json::set(std::string key, Json value) {
  RTLB_CHECK(is_object(), "Json::set on a non-object");
  Members& members = std::get<Members>(value_);
  for (auto& [existing_key, existing_value] : members) {
    if (existing_key == key) {  // upsert: an object has one value per key
      existing_value = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  RTLB_CHECK(is_array(), "Json::push on a non-array");
  std::get<Elements>(value_).push_back(std::move(value));
  return *this;
}

void Json::escape_to(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? "\n" + std::string(indent * (depth + 1), ' ') : "";
  const std::string pad_close = indent > 0 ? "\n" + std::string(indent * depth, ' ') : "";
  const char* sep = indent > 0 ? ": " : ":";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const std::int64_t* n = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*n);
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.10g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    escape_to(out, *s);
  } else if (const Members* m = std::get_if<Members>(&value_)) {
    if (m->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *m) {
      if (!first) out += ',';
      first = false;
      out += pad;
      escape_to(out, key);
      out += sep;
      value.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += '}';
  } else if (const Elements* e = std::get_if<Elements>(&value_)) {
    if (e->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& value : *e) {
      if (!first) out += ',';
      first = false;
      out += pad;
      value.dump_to(out, indent, depth + 1);
    }
    out += pad_close;
    out += ']';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::as_bool() const {
  RTLB_CHECK(is_bool(), "Json::as_bool on a non-bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  RTLB_CHECK(is_int(), "Json::as_int on a non-integer");
  return std::get<std::int64_t>(value_);
}

double Json::as_double() const {
  if (const std::int64_t* n = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*n);
  }
  RTLB_CHECK(is_double(), "Json::as_double on a non-number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  RTLB_CHECK(is_string(), "Json::as_string on a non-string");
  return std::get<std::string>(value_);
}

const Json* Json::find(std::string_view key) const {
  const Members* m = std::get_if<Members>(&value_);
  if (m == nullptr) return nullptr;
  for (const auto& [k, v] : *m) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (const Members* m = std::get_if<Members>(&value_)) return m->size();
  if (const Elements* e = std::get_if<Elements>(&value_)) return e->size();
  RTLB_CHECK(false, "Json::size on a non-container");
  return 0;
}

const Json& Json::at(std::size_t i) const {
  RTLB_CHECK(is_array(), "Json::at on a non-array");
  const Elements& e = std::get<Elements>(value_);
  RTLB_CHECK(i < e.size(), "Json::at out of range");
  return e[i];
}

const std::pair<std::string, Json>& Json::member(std::size_t i) const {
  RTLB_CHECK(is_object(), "Json::member on a non-object");
  const Members& m = std::get<Members>(value_);
  RTLB_CHECK(i < m.size(), "Json::member out of range");
  return m[i];
}

namespace {

// Recursive-descent parser over a string_view. Depth is counted per
// object/array and capped so hostile "[[[[..." input fails with a
// JsonParseError before the call stack does.
class Parser {
 public:
  Parser(std::string_view text, const JsonParseOptions& options)
      : text_(text), max_depth_(options.max_depth) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at offset " + std::to_string(pos_) +
                         ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    if (depth >= max_depth_) {
      fail("nesting depth exceeds limit of " + std::to_string(max_depth_));
    }
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    if (depth >= max_depth_) {
      fail("nesting depth exceeds limit of " + std::to_string(max_depth_));
    }
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: a high surrogate must be followed by "\uDC00".."\uDFFF".
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      fail("invalid value");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // leading zero must stand alone
      if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        fail("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        return Json(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double like most parsers do.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

}  // namespace

Json Json::parse(std::string_view text, const JsonParseOptions& options) {
  return Parser(text, options).run();
}

}  // namespace rtlb
