// Small string utilities used by the text I/O format and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rtlb {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join the elements with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a signed integer; throws ModelError with context on failure.
std::int64_t parse_int(std::string_view s, std::string_view context);

/// Render a set of names as "{a,b,c}" or "-" when empty (Table 1 style).
std::string brace_set(const std::vector<std::string>& names);

}  // namespace rtlb
