#include "src/common/random.hpp"

#include <cmath>

#include "src/common/types.hpp"

namespace rtlb {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t split_seed(std::uint64_t root, std::uint64_t a, std::uint64_t b) {
  // Chain: finalize root, fold in lane a, finalize, fold in lane b,
  // finalize. The +1 offsets keep lane 0 from being a no-op fold; the
  // multipliers are the splitmix64 finalizer's own odd constants, reused as
  // generic odd mixers.
  std::uint64_t state = root;
  std::uint64_t h = splitmix64(state);
  state = h ^ ((a + 1) * 0xbf58476d1ce4e5b9ULL);
  h = splitmix64(state);
  state = h ^ ((b + 1) * 0x94d049bb133111ebULL);
  return splitmix64(state);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state through splitmix64 as recommended by the
  // xoshiro authors; guards against the all-zero state.
  //
  // Fleet-independence audit: the whole state is a pure function of `seed`
  // and the generator holds no global or thread-local state, so equal seeds
  // yield equal streams in any process, shard, or resume epoch. Callers
  // that fan one logical run into many generators must derive the child
  // seeds through split_seed() -- NOT seed+i, whose consecutive states the
  // single finalizer pass below would still keep far apart, but which
  // collides trivially across lanes (cell c instance k+1 vs cell c+1
  // instance k under any linear packing).
  for (auto& word : s_) word = splitmix64(seed);
  s_[0] |= 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  RTLB_CHECK(lo <= hi, "uniform: empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span) - 1;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x > limit);
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::index(std::size_t n) {
  RTLB_CHECK(n > 0, "index: empty range");
  return static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(n) - 1));
}

std::vector<std::int64_t> Rng::split_sum(std::int64_t total, std::size_t n) {
  RTLB_CHECK(n > 0, "split_sum: n must be positive");
  RTLB_CHECK(total >= static_cast<std::int64_t>(n), "split_sum: total < n");
  // Draw n exponential-ish weights, normalize, round, then repair the sum.
  std::vector<double> w(n);
  double sum = 0;
  for (auto& x : w) {
    x = -std::log(1.0 - uniform01());
    sum += x;
  }
  std::vector<std::int64_t> out(n, 1);
  std::int64_t assigned = static_cast<std::int64_t>(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto extra = static_cast<std::int64_t>((total - static_cast<std::int64_t>(n)) * w[i] / sum);
    out[i] += extra;
    assigned += extra;
  }
  // Distribute the rounding remainder one tick at a time.
  std::size_t i = 0;
  while (assigned < total) {
    ++out[i % n];
    ++assigned;
    ++i;
  }
  return out;
}

}  // namespace rtlb
