#include "src/common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace rtlb {

namespace {
std::atomic<std::uint64_t> g_tasks_dispatched{0};
}  // namespace

std::uint64_t ThreadPool::tasks_dispatched() {
  return g_tasks_dispatched.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this](std::stop_token st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& w : workers_) w.request_stop();
  cv_.notify_all();
  // std::jthread joins on destruction.
}

unsigned ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::jthread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard lock(mutex_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::stop_token st) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, st, [this] { return !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop requested and queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  g_tasks_dispatched.fetch_add(n, std::memory_order_relaxed);
  if (workers_.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::size_t runners = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;                // guarded by mutex
    std::exception_ptr error;            // guarded by mutex
  };
  // shared_ptr so a runner that finishes after the caller was woken (but
  // before it returns) still has a live State to touch.
  auto state = std::make_shared<State>();
  state->n = n;
  state->runners = std::min<std::size_t>(workers_.size(), n);
  state->body = &body;

  for (std::size_t r = 0; r < state->runners; ++r) {
    submit([state] {
      for (;;) {
        const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->n) break;
        try {
          (*state->body)(i);
        } catch (...) {
          std::lock_guard lock(state->mutex);
          if (!state->error) state->error = std::current_exception();
        }
      }
      {
        std::lock_guard lock(state->mutex);
        ++state->done;
      }
      state->done_cv.notify_one();
    });
  }

  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->done == state->runners; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace rtlb
