// Minimal JSON document model: a write-side builder and a hardened parser.
//
// Just enough for machine-readable analysis reports and the certificate
// files of src/verify: objects, arrays, strings (escaped), integers,
// doubles, booleans. Problem instances still travel in the text format of
// src/model/io.hpp; JSON input exists for certificates only.
//
// The parser is meant for UNTRUSTED input (rtlb_check reads certificate
// files from disk), so it is total: every malformed document raises
// JsonParseError with an offset, integers that do not fit int64 fall back
// to double, and container nesting is capped (JsonParseOptions::max_depth,
// default 64) so a "[[[[..." bomb fails with a clear error instead of
// exhausting the stack.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace rtlb {

/// Malformed JSON input; `what()` carries a byte offset and a description.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

struct JsonParseOptions {
  /// Maximum container (object/array) nesting the parser will follow. The
  /// recursive-descent parser uses one stack frame per level, so the cap is
  /// what makes deeply nested hostile input fail cleanly.
  std::size_t max_depth = 64;
};

class Json {
 public:
  Json() : value_(nullptr) {}  // null
  Json(bool b) : value_(b) {}
  Json(std::int64_t n) : value_(n) {}
  Json(int n) : value_(static_cast<std::int64_t>(n)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Members{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Elements{};
    return j;
  }

  /// Object field; keeps insertion order. Only valid on objects.
  Json& set(std::string key, Json value);

  /// Array element. Only valid on arrays.
  Json& push(Json value);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  /// Any JSON number: integer- or double-valued.
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Members>(value_); }
  bool is_array() const { return std::holds_alternative<Elements>(value_); }

  // Read accessors. Each RTLB_CHECKs the kind; callers validating untrusted
  // documents must test is_*() first (the certificate parser does).
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric value as double; accepts both int64 and double payloads.
  double as_double() const;
  const std::string& as_string() const;

  /// Object lookup; nullptr when absent (or *this is not an object).
  const Json* find(std::string_view key) const;

  /// Container size: number of members (object) or elements (array).
  std::size_t size() const;
  /// Array element access. Only valid on arrays, i < size().
  const Json& at(std::size_t i) const;
  /// Object member access by position (insertion order). Only valid on objects.
  const std::pair<std::string, Json>& member(std::size_t i) const;

  /// Serialize; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. Throws JsonParseError on malformed
  /// input, trailing garbage, or nesting deeper than `options.max_depth`.
  static Json parse(std::string_view text, const JsonParseOptions& options = {});

 private:
  using Members = std::vector<std::pair<std::string, Json>>;
  using Elements = std::vector<Json>;
  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Members, Elements>
      value_;
};

}  // namespace rtlb
