// Minimal JSON document builder (write-only).
//
// Just enough for machine-readable analysis reports: objects, arrays,
// strings (escaped), integers, doubles, booleans. No parsing -- this
// library consumes its own text format (src/model/io.hpp) for input.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace rtlb {

class Json {
 public:
  Json() : value_(nullptr) {}  // null
  Json(bool b) : value_(b) {}
  Json(std::int64_t n) : value_(n) {}
  Json(int n) : value_(static_cast<std::int64_t>(n)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}

  static Json object() {
    Json j;
    j.value_ = Members{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Elements{};
    return j;
  }

  /// Object field; keeps insertion order. Only valid on objects.
  Json& set(std::string key, Json value);

  /// Array element. Only valid on arrays.
  Json& push(Json value);

  bool is_object() const { return std::holds_alternative<Members>(value_); }
  bool is_array() const { return std::holds_alternative<Elements>(value_); }

  /// Serialize; `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

 private:
  using Members = std::vector<std::pair<std::string, Json>>;
  using Elements = std::vector<Json>;
  void dump_to(std::string& out, int indent, int depth) const;
  static void escape_to(std::string& out, const std::string& s);

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Members, Elements>
      value_;
};

}  // namespace rtlb
