// Deterministic PRNG utilities.
//
// All synthetic workloads in this repository are generated from explicit
// seeds so that every test, example, and benchmark run is reproducible.
// The generator is xoshiro256++ seeded through splitmix64, which is both
// faster and of higher quality than std::mt19937 while staying header-light.
#pragma once

#include <cstdint>
#include <vector>

namespace rtlb {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stream-split seed derivation for fleet-scale generation: an independent
/// child seed for lane (a, b) under `root`. The fleet runner derives the
/// seed of instance k of scenario cell c as split_seed(root, c, k), so the
/// instance's bytes depend only on (root, c, k) -- never on which shard,
/// worker, chunk, or checkpoint-resume epoch generated it, and never on how
/// many instances were generated before it in the same process (each
/// instance owns its Rng; there is no shared stream to advance).
///
/// The scheme is three chained splitmix64 finalizer applications with the
/// lanes folded in between through distinct odd multipliers; splitmix64 is
/// a bijection on u64, so two lanes collide only if the mixed states
/// collide -- nearby (root, c, k) triples (the common case: sequential cell
/// and instance indices) land in unrelated states. Frozen by a pinned
/// regression test (tests/test_fleet.cpp): changing these constants
/// silently regenerates every fleet corpus, so it must never happen
/// accidentally.
std::uint64_t split_seed(std::uint64_t root, std::uint64_t a, std::uint64_t b = 0);

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Uniformly pick an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// UUniFast-style: n non-negative values summing to `total`, each >= 1,
  /// rounded to integers. Used to split workloads across tasks.
  std::vector<std::int64_t> split_sum(std::int64_t total, std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace rtlb
