#include "src/common/csv.hpp"

#include "src/common/strings.hpp"
#include "src/common/types.hpp"

namespace rtlb {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), arity_(header.size()) {
  RTLB_CHECK(arity_ > 0, "csv needs at least one column");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  RTLB_CHECK(row.size() == arity_, "csv row arity mismatch");
  std::vector<std::string> escaped;
  escaped.reserve(row.size());
  for (const std::string& field : row) escaped.push_back(escape(field));
  out_ << join(escaped, ",") << "\n";
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}

}  // namespace rtlb
