// Basic scalar types and small helpers shared across the library.
//
// All times in rtlb are integer "ticks" (Time). The paper's analysis divides
// accumulated demand by interval widths; to keep every bound exact we never
// convert to floating point inside an algorithm -- see ratio.hpp.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace rtlb {

/// Integer time in ticks. Signed so that slack arithmetic (L - C - m) can go
/// negative and be detected, rather than wrapping.
using Time = std::int64_t;

/// Sentinel for "unconstrained deadline" style extremes.
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max() / 4;
inline constexpr Time kTimeMin = -kTimeMax;

/// Index of a task within an Application. Dense, 0-based.
using TaskId = std::uint32_t;

/// Interned id of a resource *or* processor type (the paper's RES contains
/// both). Dense, 0-based, scoped to a ResourceCatalog.
using ResourceId = std::uint32_t;

inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);
inline constexpr ResourceId kInvalidResource = static_cast<ResourceId>(-1);

/// ceil(a / b) for a >= 0, b > 0. Written with a remainder test rather than
/// the usual (a + b - 1) / b so that near-INT64_MAX numerators (demands over
/// windows beyond kTimeMax, which user input can produce) cannot overflow.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return a / b + (a % b != 0 ? 1 : 0);
}

/// The library-wide rule for scaling a tick count by a real factor (the
/// sensitivity sweeps, CCR rescaling): round to the nearest tick (half away
/// from zero, as std::llround) and saturate at [0, kTimeMax]. The saturation
/// matters: a bare static_cast<Time> of `factor * value` is undefined
/// behaviour once the product exceeds the int64 range, which large sweep
/// factors can produce.
inline Time scale_time(double factor, Time value) {
  const double scaled = factor * static_cast<double>(value);
  if (!(scaled > 0)) return 0;  // also maps NaN to 0
  if (scaled >= static_cast<double>(kTimeMax)) return kTimeMax;
  return static_cast<Time>(std::llround(scaled));
}

/// The paper's alpha(x): max(x, 0).
constexpr Time alpha(Time x) { return x > 0 ? x : 0; }

/// The paper's mu(x): 1 if x > 0 else 0.
constexpr int mu(Time x) { return x > 0 ? 1 : 0; }

/// Error type for model-construction and input violations.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal invariant check that is always on (the library is not
/// performance-critical enough to justify silent corruption in release).
#define RTLB_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      throw std::logic_error(std::string("rtlb internal error: ") +  \
                             (msg) + " [" #cond "]");                \
    }                                                                \
  } while (false)

}  // namespace rtlb
