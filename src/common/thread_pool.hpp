// A small fixed-size worker pool for the parallel bound engine.
//
// Deliberately minimal: a single mutex/condvar-protected FIFO of jobs and a
// fixed number of std::jthread workers -- no work stealing, no task graphs.
// The only composite operation the library needs is parallel_for, which
// distributes indices [0, n) across the workers via a shared atomic cursor
// and blocks the caller until every index has been processed.
//
// Determinism contract: parallel_for says nothing about the ORDER in which
// indices run, so callers that need deterministic output must write each
// index's result into its own slot and merge the slots in index order
// afterwards (this is exactly what src/core/lower_bound.cpp does).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rtlb {

class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (at least 1).
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run body(i) for every i in [0, n), spread across the workers; blocks
  /// until all calls return. The first exception thrown by any body call is
  /// rethrown here (remaining indices may or may not run).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Map an options-style thread count to a worker count: values <= 0 mean
  /// "one per hardware thread", anything else is taken literally.
  static unsigned resolve_threads(int requested);

  /// Process-wide count of parallel_for bodies dispatched (including the
  /// serial inline path), monotone since process start. The observability
  /// layer reads deltas around a pipeline stage to attribute pool work to
  /// it; a single relaxed atomic add per parallel_for keeps the cost
  /// unmeasurable.
  static std::uint64_t tasks_dispatched();

 private:
  void submit(std::function<void()> job);
  void worker_loop(std::stop_token st);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::queue<std::function<void()>> jobs_;
  std::vector<std::jthread> workers_;
};

}  // namespace rtlb
