// ASCII table renderer for examples and benchmark reports.
//
// Benches regenerate the paper's tables as text; this keeps their output
// aligned and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rtlb {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: stringify any streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... vals) {
    add_row({to_cell(vals)...});
  }

  std::size_t rows() const { return rows_.size(); }

  /// Render with column alignment and +---+ rules.
  std::string to_string() const;

  /// Emit the same data as CSV (header + rows), for plotting pipelines.
  void to_csv(std::ostream& out) const;

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtlb
