// Crash-safe checkpoint file I/O for the long-running drivers (the fleet
// runner writes one checkpoint per chunk and must survive kill -9 at any
// instant).
//
// The only primitive that makes that safe on POSIX is write-to-temp +
// rename: readers either see the complete previous checkpoint or the
// complete new one, never a torn file. fsync is deliberately skipped --
// the fleet's contract is resume-consistency after a process kill, not
// power loss, and a per-chunk fsync would dominate small-instance runs.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace rtlb {

/// Atomically replace `path` with `content` (write `path`.tmp, rename).
/// Returns false (with the file untouched) when the directory is not
/// writable or the rename fails.
bool atomic_write_file(const std::string& path, std::string_view content);

/// Whole-file read; std::nullopt when the file does not exist or cannot be
/// opened (the fleet treats both as "no checkpoint yet").
std::optional<std::string> read_file_text(const std::string& path);

}  // namespace rtlb
