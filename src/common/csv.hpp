// Minimal CSV writer; benches emit machine-readable series alongside the
// human-readable tables so results can be replotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rtlb {

class CsvWriter {
 public:
  /// Writes the header immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Fields are escaped here (quotes/commas/newlines), so raw cell values
  /// can be passed directly.
  void write_row(const std::vector<std::string>& row);

  template <typename... Ts>
  void write(const Ts&... vals) {
    write_row({cell(vals)...});
  }

 private:
  template <typename T>
  static std::string cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }
  static std::string escape(const std::string& s);

  std::ostream& out_;
  std::size_t arity_;
};

}  // namespace rtlb
