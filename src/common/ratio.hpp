// Exact comparison of demand densities Theta / width without floating point.
//
// The lower bound LB_r = ceil(max over intervals of Theta(r,t1,t2)/(t2-t1))
// (Eq. 6.3). We track the running maximum as an exact rational with 128-bit
// cross multiplication so that ties and near-ties are resolved exactly.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace rtlb {

/// A non-negative rational num/den with den > 0. Comparison is exact.
///
/// Overflow safety: cross products of two int64 values are bounded by
/// 2^126 < 2^127, so widening each side to __int128 BEFORE multiplying can
/// never overflow, for any Time values a caller feeds in -- including
/// windows at or beyond kTimeMax. ceil() delegates to the remainder-based
/// ceil_div, which is likewise total over the int64 range.
struct Ratio {
  std::int64_t num = 0;
  std::int64_t den = 1;

  friend bool operator<(const Ratio& a, const Ratio& b) {
    return static_cast<__int128>(a.num) * b.den <
           static_cast<__int128>(b.num) * a.den;
  }
  friend bool operator>(const Ratio& a, const Ratio& b) { return b < a; }
  friend bool operator==(const Ratio& a, const Ratio& b) {
    return static_cast<__int128>(a.num) * b.den ==
           static_cast<__int128>(b.num) * a.den;
  }

  /// ceil(num/den) for num >= 0, den > 0.
  std::int64_t ceil() const { return ceil_div(num, den); }

  double to_double() const { return static_cast<double>(num) / static_cast<double>(den); }
};

/// Running maximum of ratios, starting at 0/1.
class MaxRatio {
 public:
  void update(std::int64_t num, std::int64_t den) {
    Ratio r{num, den};
    if (best_ < r) best_ = r;
  }
  const Ratio& best() const { return best_; }

 private:
  Ratio best_{0, 1};
};

}  // namespace rtlb
