#include "src/common/strings.hpp"

#include <cctype>
#include <charconv>

#include "src/common/types.hpp"

namespace rtlb {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::int64_t parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ModelError("expected integer for " + std::string(context) + ", got '" +
                     std::string(s) + "'");
  }
  return value;
}

std::string brace_set(const std::vector<std::string>& names) {
  if (names.empty()) return "-";
  return "{" + join(names, ",") + "}";
}

}  // namespace rtlb
