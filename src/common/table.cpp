#include "src/common/table.hpp"

#include <algorithm>
#include <ostream>

#include "src/common/csv.hpp"
#include "src/common/types.hpp"

namespace rtlb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RTLB_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  RTLB_CHECK(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < width.size(); ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

void Table::to_csv(std::ostream& out) const {
  CsvWriter csv(out, header_);
  for (const auto& row : rows_) csv.write_row(row);
}

}  // namespace rtlb
