// Directed acyclic graph container and classic algorithms.
//
// The application model (src/model) stores its precedence structure in a Dag;
// generators (src/graph/generators) produce random Dags for synthetic
// workloads. Vertices are dense 0-based ids.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace rtlb {

class Dag {
 public:
  Dag() = default;
  explicit Dag(std::size_t num_vertices);

  std::size_t num_vertices() const { return succ_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Add vertices so that the graph has at least `n` of them.
  void grow_to(std::size_t n);

  /// Add edge u -> v. Duplicate edges and self-loops are rejected.
  void add_edge(std::uint32_t u, std::uint32_t v);

  bool has_edge(std::uint32_t u, std::uint32_t v) const;

  const std::vector<std::uint32_t>& successors(std::uint32_t v) const { return succ_[v]; }
  const std::vector<std::uint32_t>& predecessors(std::uint32_t v) const { return pred_[v]; }

  std::size_t in_degree(std::uint32_t v) const { return pred_[v].size(); }
  std::size_t out_degree(std::uint32_t v) const { return succ_[v].size(); }

  std::vector<std::uint32_t> sources() const;
  std::vector<std::uint32_t> sinks() const;

  /// Kahn topological order, or nullopt if the edge set has a cycle.
  std::optional<std::vector<std::uint32_t>> topological_order() const;

  bool is_acyclic() const { return topological_order().has_value(); }

  /// Bit-matrix reachability: reach[u][v] == true iff a path u ->* v exists.
  std::vector<std::vector<bool>> reachability() const;

  /// Longest weighted path ending at each vertex (vertex weights), i.e. the
  /// classic critical-path level. Requires acyclic; throws otherwise.
  std::vector<Time> longest_path_to(const std::vector<Time>& vertex_weight) const;

  /// Longest weighted path starting at each vertex (inclusive of the vertex).
  std::vector<Time> longest_path_from(const std::vector<Time>& vertex_weight) const;

  /// Length of the overall critical path under the given vertex weights.
  Time critical_path(const std::vector<Time>& vertex_weight) const;

  /// Depth level of each vertex (sources are level 0).
  std::vector<std::uint32_t> levels() const;

  /// Graphviz dot output, one label per vertex.
  std::string to_dot(const std::vector<std::string>& labels) const;

  /// The transitive reduction: the unique minimal edge set with the same
  /// reachability (unique for DAGs). Useful for de-cluttering generated
  /// precedence graphs. Requires acyclic; throws otherwise.
  Dag transitive_reduction() const;

 private:
  std::vector<std::vector<std::uint32_t>> succ_;
  std::vector<std::vector<std::uint32_t>> pred_;
  std::size_t num_edges_ = 0;
};

}  // namespace rtlb
