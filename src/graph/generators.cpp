#include "src/graph/generators.hpp"

#include <algorithm>

namespace rtlb {

Dag layered_dag(Rng& rng, std::size_t num_vertices, std::size_t num_layers, double edge_prob) {
  RTLB_CHECK(num_layers >= 1 && num_vertices >= num_layers, "layered_dag: bad shape");
  // Assign vertices to layers: one guaranteed per layer, remainder random.
  std::vector<std::size_t> layer_of(num_vertices);
  for (std::size_t i = 0; i < num_layers; ++i) layer_of[i] = i;
  for (std::size_t i = num_layers; i < num_vertices; ++i) layer_of[i] = rng.index(num_layers);
  std::vector<std::vector<std::uint32_t>> layers(num_layers);
  for (std::uint32_t v = 0; v < num_vertices; ++v) layers[layer_of[v]].push_back(v);

  Dag g(num_vertices);
  for (std::size_t l = 1; l < num_layers; ++l) {
    for (std::uint32_t v : layers[l]) {
      bool attached = false;
      for (std::uint32_t u : layers[l - 1]) {
        if (rng.chance(edge_prob)) {
          g.add_edge(u, v);
          attached = true;
        }
      }
      if (!attached) {
        g.add_edge(layers[l - 1][rng.index(layers[l - 1].size())], v);
      }
    }
  }
  return g;
}

Dag random_dag(Rng& rng, std::size_t num_vertices, double p) {
  Dag g(num_vertices);
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    for (std::uint32_t v = u + 1; v < num_vertices; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Dag fork_join(std::size_t width, std::size_t depth) {
  RTLB_CHECK(width >= 1 && depth >= 1, "fork_join: bad shape");
  const std::size_t n = 2 + width * depth;
  Dag g(n);
  const std::uint32_t source = 0;
  const std::uint32_t sink = static_cast<std::uint32_t>(n - 1);
  for (std::size_t c = 0; c < width; ++c) {
    std::uint32_t prev = source;
    for (std::size_t d = 0; d < depth; ++d) {
      auto v = static_cast<std::uint32_t>(1 + c * depth + d);
      g.add_edge(prev, v);
      prev = v;
    }
    g.add_edge(prev, sink);
  }
  return g;
}

Dag pipeline(std::size_t n) {
  Dag g(n);
  for (std::uint32_t v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Dag out_tree(std::size_t num_vertices, std::size_t branching) {
  RTLB_CHECK(branching >= 1, "out_tree: branching must be >= 1");
  Dag g(num_vertices);
  for (std::uint32_t v = 1; v < num_vertices; ++v) {
    g.add_edge(static_cast<std::uint32_t>((v - 1) / branching), v);
  }
  return g;
}

Dag in_tree(std::size_t num_vertices, std::size_t branching) {
  // Reverse every edge of the out-tree and relabel v -> n-1-v so that edges
  // still point from lower to higher id.
  Dag tree = out_tree(num_vertices, branching);
  Dag g(num_vertices);
  auto relabel = [num_vertices](std::uint32_t v) {
    return static_cast<std::uint32_t>(num_vertices - 1 - v);
  };
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    for (std::uint32_t w : tree.successors(v)) g.add_edge(relabel(w), relabel(v));
  }
  return g;
}

Dag series_parallel(Rng& rng, std::size_t num_vertices) {
  RTLB_CHECK(num_vertices >= 2, "series_parallel: need >= 2 vertices");
  // Maintain a list of edges; repeatedly pick an edge and either subdivide it
  // (series: u->x->v) or duplicate it through a new vertex (parallel branch
  // u->x->v next to u->v). Both steps add exactly one vertex.
  struct E {
    std::uint32_t u, v;
  };
  std::vector<E> edges{{0, 1}};
  std::uint32_t next = 2;
  while (next < num_vertices) {
    std::size_t pick = rng.index(edges.size());
    E e = edges[pick];
    std::uint32_t x = next++;
    if (rng.chance(0.5)) {
      edges[pick] = {e.u, x};  // series subdivision
      edges.push_back({x, e.v});
    } else {
      edges.push_back({e.u, x});  // parallel branch
      edges.push_back({x, e.v});
    }
  }
  // Relabel by topological level so edges go low -> high (cosmetic; the
  // construction is already acyclic). Deduplicate parallel duplicates.
  Dag g(num_vertices);
  for (const E& e : edges) {
    if (!g.has_edge(e.u, e.v)) g.add_edge(e.u, e.v);
  }
  return g;
}

}  // namespace rtlb
