// Random DAG generators for synthetic real-time workloads.
//
// Each generator returns edges over vertices 0..n-1 oriented from lower to
// higher topological level, so every output is acyclic by construction. The
// shapes cover the structures common in the scheduling literature: layered
// graphs (the paper's Figure 7 is one), fork-join / in-tree / out-tree
// precedence, series-parallel compositions, simple pipelines, and uniform
// random (Erdos-Renyi over the upper triangle).
#pragma once

#include <cstdint>

#include "src/common/random.hpp"
#include "src/graph/dag.hpp"

namespace rtlb {

/// Vertices arranged in `num_layers` layers; each vertex gets edges from a
/// random subset of the previous layer with probability `edge_prob` (at least
/// one edge per non-source vertex, so layers are genuine precedence levels).
Dag layered_dag(Rng& rng, std::size_t num_vertices, std::size_t num_layers, double edge_prob);

/// Erdos-Renyi DAG: each pair (u, v), u < v, is an edge with probability p.
Dag random_dag(Rng& rng, std::size_t num_vertices, double p);

/// Fork-join: a source fans out to `width` parallel chains of `depth` tasks
/// which join into a sink. Vertex count = 2 + width * depth.
Dag fork_join(std::size_t width, std::size_t depth);

/// A single chain of n tasks (pipeline).
Dag pipeline(std::size_t n);

/// Out-tree with given branching factor (root = 0).
Dag out_tree(std::size_t num_vertices, std::size_t branching);

/// In-tree: mirror of out_tree (sink = 0 after relabeling to last vertex).
Dag in_tree(std::size_t num_vertices, std::size_t branching);

/// Random series-parallel graph with ~num_vertices vertices built by
/// recursive series/parallel expansion of a single edge.
Dag series_parallel(Rng& rng, std::size_t num_vertices);

}  // namespace rtlb
