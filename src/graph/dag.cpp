#include "src/graph/dag.hpp"

#include <algorithm>

namespace rtlb {

Dag::Dag(std::size_t num_vertices) : succ_(num_vertices), pred_(num_vertices) {}

void Dag::grow_to(std::size_t n) {
  if (n > succ_.size()) {
    succ_.resize(n);
    pred_.resize(n);
  }
}

void Dag::add_edge(std::uint32_t u, std::uint32_t v) {
  RTLB_CHECK(u < succ_.size() && v < succ_.size(), "edge endpoint out of range");
  if (u == v) throw ModelError("self-loop on vertex " + std::to_string(u));
  if (has_edge(u, v)) throw ModelError("duplicate edge " + std::to_string(u) + "->" + std::to_string(v));
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++num_edges_;
}

bool Dag::has_edge(std::uint32_t u, std::uint32_t v) const {
  RTLB_CHECK(u < succ_.size() && v < succ_.size(), "edge endpoint out of range");
  return std::find(succ_[u].begin(), succ_[u].end(), v) != succ_[u].end();
}

std::vector<std::uint32_t> Dag::sources() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < succ_.size(); ++v) {
    if (pred_[v].empty()) out.push_back(v);
  }
  return out;
}

std::vector<std::uint32_t> Dag::sinks() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < succ_.size(); ++v) {
    if (succ_[v].empty()) out.push_back(v);
  }
  return out;
}

std::optional<std::vector<std::uint32_t>> Dag::topological_order() const {
  std::vector<std::uint32_t> indeg(succ_.size());
  for (std::uint32_t v = 0; v < succ_.size(); ++v) {
    indeg[v] = static_cast<std::uint32_t>(pred_[v].size());
  }
  std::vector<std::uint32_t> order;
  order.reserve(succ_.size());
  std::vector<std::uint32_t> frontier = sources();
  // Process in ascending-id order within the frontier for determinism.
  while (!frontier.empty()) {
    std::sort(frontier.begin(), frontier.end(), std::greater<>{});
    std::uint32_t v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (std::uint32_t w : succ_[v]) {
      if (--indeg[w] == 0) frontier.push_back(w);
    }
  }
  if (order.size() != succ_.size()) return std::nullopt;
  return order;
}

std::vector<std::vector<bool>> Dag::reachability() const {
  auto topo = topological_order();
  RTLB_CHECK(topo.has_value(), "reachability on cyclic graph");
  std::vector<std::vector<bool>> reach(succ_.size(), std::vector<bool>(succ_.size(), false));
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    std::uint32_t v = *it;
    for (std::uint32_t w : succ_[v]) {
      reach[v][w] = true;
      for (std::uint32_t x = 0; x < succ_.size(); ++x) {
        if (reach[w][x]) reach[v][x] = true;
      }
    }
  }
  return reach;
}

std::vector<Time> Dag::longest_path_to(const std::vector<Time>& vertex_weight) const {
  RTLB_CHECK(vertex_weight.size() == succ_.size(), "weight arity mismatch");
  auto topo = topological_order();
  if (!topo) throw ModelError("longest_path_to: graph has a cycle");
  std::vector<Time> dist(succ_.size(), 0);
  for (std::uint32_t v : *topo) {
    Time best = 0;
    for (std::uint32_t p : pred_[v]) best = std::max(best, dist[p]);
    dist[v] = best + vertex_weight[v];
  }
  return dist;
}

std::vector<Time> Dag::longest_path_from(const std::vector<Time>& vertex_weight) const {
  RTLB_CHECK(vertex_weight.size() == succ_.size(), "weight arity mismatch");
  auto topo = topological_order();
  if (!topo) throw ModelError("longest_path_from: graph has a cycle");
  std::vector<Time> dist(succ_.size(), 0);
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    std::uint32_t v = *it;
    Time best = 0;
    for (std::uint32_t s : succ_[v]) best = std::max(best, dist[s]);
    dist[v] = best + vertex_weight[v];
  }
  return dist;
}

Time Dag::critical_path(const std::vector<Time>& vertex_weight) const {
  Time best = 0;
  for (Time d : longest_path_to(vertex_weight)) best = std::max(best, d);
  return best;
}

std::vector<std::uint32_t> Dag::levels() const {
  auto topo = topological_order();
  if (!topo) throw ModelError("levels: graph has a cycle");
  std::vector<std::uint32_t> level(succ_.size(), 0);
  for (std::uint32_t v : *topo) {
    for (std::uint32_t p : pred_[v]) level[v] = std::max(level[v], level[p] + 1);
  }
  return level;
}

Dag Dag::transitive_reduction() const {
  if (!is_acyclic()) throw ModelError("transitive_reduction: graph has a cycle");
  const auto reach = reachability();
  Dag out(num_vertices());
  for (std::uint32_t u = 0; u < succ_.size(); ++u) {
    for (std::uint32_t v : succ_[u]) {
      // u -> v is redundant iff some other successor w of u reaches v.
      bool redundant = false;
      for (std::uint32_t w : succ_[u]) {
        if (w != v && reach[w][v]) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.add_edge(u, v);
    }
  }
  return out;
}

std::string Dag::to_dot(const std::vector<std::string>& labels) const {
  RTLB_CHECK(labels.size() == succ_.size(), "label arity mismatch");
  std::string out = "digraph G {\n";
  for (std::uint32_t v = 0; v < succ_.size(); ++v) {
    out += "  n" + std::to_string(v) + " [label=\"" + labels[v] + "\"];\n";
  }
  for (std::uint32_t v = 0; v < succ_.size(); ++v) {
    for (std::uint32_t w : succ_[v]) {
      out += "  n" + std::to_string(v) + " -> n" + std::to_string(w) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace rtlb
