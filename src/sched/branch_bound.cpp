#include "src/sched/branch_bound.hpp"

#include <algorithm>

#include "src/core/overlap.hpp"
#include "src/sched/feasibility.hpp"

namespace rtlb {

namespace {

class BranchBoundSearch {
 public:
  BranchBoundSearch(const Application& app, const Capacities& caps, const SearchLimits& limits,
                    BranchBoundStats& stats)
      : app_(app), caps_(caps), limits_(limits), stats_(stats), schedule_(app.num_tasks()) {
    auto topo = app.dag().topological_order();
    if (!topo) throw ModelError("branch-and-bound: cyclic graph");
    order_ = *topo;
    units_used_.assign(app.catalog().size(), 0);
  }

  bool run(Schedule* witness) {
    if (dfs(0)) {
      if (witness != nullptr) *witness = schedule_;
      return true;
    }
    return false;
  }

 private:
  /// Dynamic start lower bounds: committed tasks pin their ends; unplaced
  /// tasks inherit max(release, preds' best-case finish) -- messages are
  /// elided (the successor MIGHT be co-located), keeping it a true bound.
  std::vector<Time> dynamic_lb() const {
    std::vector<Time> lb(app_.num_tasks(), 0);
    for (TaskId i : order_) {
      if (schedule_.items[i].placed()) {
        lb[i] = schedule_.items[i].start;
        continue;
      }
      lb[i] = app_.task(i).release;
      for (TaskId j : app_.predecessors(i)) {
        const Time j_end = schedule_.items[j].placed() ? schedule_.end_of(app_, j)
                                                       : lb[j] + app_.task(j).comp;
        lb[i] = std::max(lb[i], j_end);
      }
    }
    return lb;
  }

  bool prune(const std::vector<Time>& lb) {
    // (a) window collapse.
    for (TaskId i = 0; i < app_.num_tasks(); ++i) {
      if (!schedule_.items[i].placed() && lb[i] + app_.task(i).comp > app_.task(i).deadline) {
        ++stats_.pruned_by_window;
        return true;
      }
    }
    // (b) the Section-6 density test with the dynamic windows: for each
    // resource, the mandatory demand of placed + unplaced work must fit
    // within capacity * width on every candidate interval.
    for (ResourceId r : app_.resource_set()) {
      const int cap = caps_.of(r);
      const std::vector<TaskId> st = app_.tasks_using(r);
      if (st.empty()) continue;
      std::vector<Time> points;
      points.reserve(st.size() * 2);
      auto window = [&](TaskId i) -> std::pair<Time, Time> {
        if (schedule_.items[i].placed()) {
          return {schedule_.items[i].start, schedule_.end_of(app_, i)};
        }
        return {lb[i], app_.task(i).deadline};
      };
      for (TaskId i : st) {
        const auto [e, l] = window(i);
        points.push_back(e);
        points.push_back(l);
      }
      std::sort(points.begin(), points.end());
      points.erase(std::unique(points.begin(), points.end()), points.end());
      for (std::size_t x = 0; x + 1 < points.size(); ++x) {
        for (std::size_t y = x + 1; y < points.size(); ++y) {
          const Time t1 = points[x];
          const Time t2 = points[y];
          Time theta = 0;
          for (TaskId i : st) {
            const auto [e, l] = window(i);
            const Task& t = app_.task(i);
            // Committed intervals are fixed: their overlap is exact either
            // way; use the non-preemptive formula which coincides there.
            theta += t.preemptive && !schedule_.items[i].placed()
                         ? overlap_preemptive(t.comp, e, l, t1, t2)
                         : overlap_nonpreemptive(t.comp, e, l, t1, t2);
          }
          if (theta > static_cast<Time>(cap) * (t2 - t1)) {
            ++stats_.pruned_by_density;
            return true;
          }
        }
      }
    }
    return false;
  }

  bool dfs(std::size_t depth) {
    if (depth == order_.size()) return true;
    {
      const std::vector<Time> lb = dynamic_lb();
      if (prune(lb)) return false;
    }

    const TaskId i = order_[depth];
    const Task& t = app_.task(i);
    if (caps_.of(t.proc) <= 0) return false;
    for (ResourceId r : t.resources) {
      if (caps_.of(r) <= 0) return false;
    }

    const int unit_limit = std::min(caps_.of(t.proc), units_used_[t.proc] + 1);
    for (int u = 0; u < unit_limit; ++u) {
      Time start_lb = t.release;
      for (TaskId j : app_.predecessors(i)) {
        const bool co_located = app_.task(j).proc == t.proc && schedule_.items[j].unit == u;
        start_lb = std::max(start_lb, schedule_.end_of(app_, j) +
                                          (co_located ? 0 : app_.message(j, i)));
      }
      const Time hi = t.deadline - t.comp;
      if (hi - start_lb > limits_.max_window) {
        throw std::runtime_error("branch-and-bound: start window of task '" + t.name +
                                 "' wider than SearchLimits.max_window");
      }
      for (Time start = start_lb; start <= hi; ++start) {
        if (++stats_.nodes_explored > limits_.max_nodes) {
          throw std::runtime_error("branch-and-bound: node budget exhausted");
        }
        if (!placement_ok(i, start, u)) continue;
        schedule_.items[i] = {start, u};
        const int prev_used = units_used_[t.proc];
        units_used_[t.proc] = std::max(units_used_[t.proc], u + 1);
        if (dfs(depth + 1)) return true;
        units_used_[t.proc] = prev_used;
        schedule_.items[i] = {};
      }
    }
    return false;
  }

  bool placement_ok(TaskId i, Time start, int unit) const {
    const Task& t = app_.task(i);
    const Time end = start + t.comp;
    for (TaskId j = 0; j < app_.num_tasks(); ++j) {
      if (j == i || !schedule_.items[j].placed()) continue;
      const Task& tj = app_.task(j);
      if (tj.proc == t.proc && schedule_.items[j].unit == unit &&
          schedule_.items[j].start < end && start < schedule_.end_of(app_, j)) {
        return false;
      }
    }
    for (ResourceId r : t.resources) {
      std::vector<std::pair<Time, Time>> users;
      for (TaskId j : app_.tasks_using(r)) {
        if (j == i || !schedule_.items[j].placed()) continue;
        const Time s = std::max(schedule_.items[j].start, start);
        const Time e = std::min(schedule_.end_of(app_, j), end);
        if (s < e) users.emplace_back(s, e);
      }
      std::vector<Time> instants{start};
      for (const auto& [s, e] : users) instants.push_back(s);
      for (Time at : instants) {
        int concurrent = 1;
        for (const auto& [s, e] : users) {
          if (s <= at && at < e) ++concurrent;
        }
        if (concurrent > caps_.of(r)) return false;
      }
    }
    return true;
  }

  const Application& app_;
  const Capacities& caps_;
  const SearchLimits& limits_;
  BranchBoundStats& stats_;
  Schedule schedule_;
  std::vector<TaskId> order_;
  std::vector<int> units_used_;
  std::int64_t nodes_ = 0;
};

}  // namespace

bool exists_feasible_schedule_bb(const Application& app, const Capacities& caps,
                                 const SearchLimits& limits, Schedule* witness,
                                 BranchBoundStats* stats) {
  BranchBoundStats local;
  BranchBoundStats& s = stats != nullptr ? *stats : local;
  Schedule found(app.num_tasks());
  BranchBoundSearch search(app, caps, limits, s);
  if (!search.run(&found)) return false;
  const auto violations = check_shared(app, found, caps);
  RTLB_CHECK(violations.empty(), "branch-and-bound produced an invalid schedule: " +
                                     (violations.empty() ? "" : violations.front()));
  if (witness != nullptr) *witness = found;
  return true;
}

}  // namespace rtlb
