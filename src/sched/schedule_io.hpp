// Text serialization of schedules, so timetables can be stored next to the
// instance files, diffed, and re-validated later.
//
// Format (one line per task, '#' comments):
//
//   place <task-name> start <tick> unit <index>
//
// Task names resolve against the Application the schedule belongs to;
// parsing rejects unknown names, duplicates, and missing tasks.
#pragma once

#include <iosfwd>
#include <string>

#include "src/model/application.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

/// Serialize a complete schedule (unplaced tasks are rejected).
std::string serialize_schedule(const Application& app, const Schedule& schedule);

/// Parse a schedule for `app`; throws ModelError with a line number on bad
/// input, unknown/duplicate task names, or tasks left unplaced.
Schedule parse_schedule(const Application& app, std::istream& in);
Schedule parse_schedule_string(const Application& app, const std::string& text);

}  // namespace rtlb
