#include "src/sched/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/random.hpp"
#include "src/core/session.hpp"
#include "src/sched/interval_profile.hpp"

namespace rtlb {

namespace {

/// A candidate solution: per-task priority (smaller = earlier among ready
/// tasks) and an optional pinned unit (-1 = free choice by earliest start).
struct Genome {
  std::vector<Time> priority;
  std::vector<int> pin;
};

/// Decode a genome into a schedule using the same insertion placement as the
/// list scheduler, but never aborting: deadline misses accumulate into the
/// returned tardiness (the annealing energy).
///
/// `unit_count(i)` = number of placement choices for task i;
/// `unit_ok(i, u)` = may task i run on unit u;
/// `unit_lb(i, u)` = release+message lower bound for i on u;
/// `place(i, u, start)` = commit.
template <typename Model>
Time decode(const Application& app, const Genome& genome, Model& model, Schedule& out) {
  std::vector<std::size_t> missing_preds(app.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    missing_preds[i] = app.predecessors(i).size();
    if (missing_preds[i] == 0) ready.push_back(i);
  }

  Time tardiness = 0;
  while (!ready.empty()) {
    auto it = std::min_element(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
      if (genome.priority[a] != genome.priority[b]) {
        return genome.priority[a] < genome.priority[b];
      }
      return a < b;
    });
    const TaskId i = *it;
    ready.erase(it);
    const Task& t = app.task(i);

    Time best_start = kTimeMax;
    int best_unit = -1;
    const int pinned = genome.pin[i];
    for (int u = 0; u < model.unit_count(i); ++u) {
      if (!model.unit_ok(i, u)) continue;
      if (pinned >= 0 && u != pinned && model.unit_ok(i, pinned)) continue;
      const Time start = model.earliest_start(i, u, out);
      if (start < best_start) {
        best_start = start;
        best_unit = u;
      }
    }
    if (best_unit < 0) return kTimeMax;  // no unit can ever host this task

    out.items[i] = {best_start, best_unit};
    model.commit(i, best_unit, best_start);
    tardiness += alpha(best_start + t.comp - t.deadline);
    for (TaskId j : app.successors(i)) {
      if (--missing_preds[j] == 0) ready.push_back(j);
    }
  }
  return tardiness;
}

/// Shared-model placement state for decode().
class SharedModel {
 public:
  SharedModel(const Application& app, const Capacities& caps) : app_(&app), caps_(&caps) {}

  void reset() {
    cpu_.clear();
    pool_.clear();
  }
  int unit_count(TaskId i) const { return caps_->of(app_->task(i).proc); }
  bool unit_ok(TaskId i, int u) const {
    if (u >= caps_->of(app_->task(i).proc)) return false;
    for (ResourceId r : app_->task(i).resources) {
      if (caps_->of(r) <= 0) return false;
    }
    return true;
  }
  Time earliest_start(TaskId i, int u, const Schedule& sched) {
    const Task& t = app_->task(i);
    Time lb = t.release;
    for (TaskId j : app_->predecessors(i)) {
      const bool co_located =
          app_->task(j).proc == t.proc && sched.items[j].unit == u;
      lb = std::max(lb, sched.end_of(*app_, j) + (co_located ? 0 : app_->message(j, i)));
    }
    IntervalProfile& cpu = cpu_[{t.proc, u}];
    Time start = lb;
    for (;;) {
      Time next = cpu.earliest_fit(start, t.comp, 1);
      for (ResourceId r : t.resources) {
        next = std::max(next, pool_[r].earliest_fit(next, t.comp, caps_->of(r)));
      }
      if (next == start) break;
      start = next;
    }
    return start;
  }
  void commit(TaskId i, int u, Time start) {
    const Task& t = app_->task(i);
    cpu_[{t.proc, u}].add(start, start + t.comp);
    for (ResourceId r : t.resources) pool_[r].add(start, start + t.comp);
  }

 private:
  const Application* app_;
  const Capacities* caps_;
  std::map<std::pair<ResourceId, int>, IntervalProfile> cpu_;
  std::map<ResourceId, IntervalProfile> pool_;
};

/// Dedicated-model placement state for decode().
class DedicatedModel {
 public:
  DedicatedModel(const Application& app, const DedicatedPlatform& platform,
                 const DedicatedConfig& config)
      : app_(&app), platform_(&platform), config_(&config), node_(config.instance_types.size()) {}

  void reset() {
    for (auto& n : node_) n.clear();
  }
  int unit_count(TaskId) const { return static_cast<int>(config_->instance_types.size()); }
  bool unit_ok(TaskId i, int inst) const {
    const Task& t = app_->task(i);
    return platform_->node_type(config_->instance_types[inst]).can_host(t.proc, t.resources);
  }
  Time earliest_start(TaskId i, int inst, const Schedule& sched) {
    const Task& t = app_->task(i);
    Time lb = t.release;
    for (TaskId j : app_->predecessors(i)) {
      const bool co_located = sched.items[j].unit == inst;
      lb = std::max(lb, sched.end_of(*app_, j) + (co_located ? 0 : app_->message(j, i)));
    }
    return node_[inst].earliest_fit(lb, t.comp, 1);
  }
  void commit(TaskId i, int inst, Time start) {
    node_[inst].add(start, start + app_->task(i).comp);
  }

 private:
  const Application* app_;
  const DedicatedPlatform* platform_;
  const DedicatedConfig* config_;
  std::vector<IntervalProfile> node_;
};

template <typename Model>
AnnealResult anneal(const Application& app, Model& model, int max_units,
                    const AnnealOptions& options) {
  AnnealResult out;
  out.schedule = Schedule(app.num_tasks());
  if (app.num_tasks() == 0) {
    out.feasible = true;
    return out;
  }
  Rng rng(options.seed);

  // Start from the effective-deadline priorities (the EDF heuristic's
  // behaviour is the first candidate -- annealing can only improve on it).
  Genome current;
  current.priority = effective_deadlines(app);
  current.pin.assign(app.num_tasks(), -1);

  Schedule sched(app.num_tasks());
  model.reset();
  Time current_energy = decode(app, current, model, sched);
  ++out.evaluations;

  if (current_energy == kTimeMax) {
    // Some task has no admissible unit at all; no permutation can fix that.
    out.best_energy = kTimeMax;
    return out;
  }

  Genome best = current;
  Time best_energy = current_energy;
  Schedule best_schedule = sched;

  double temperature =
      std::max(1.0, options.initial_temperature_frac * static_cast<double>(current_energy));

  while (out.evaluations < options.max_evaluations && best_energy > 0) {
    // Propose a move: swap two priorities, nudge one priority, or re-pin.
    Genome next = current;
    const double dice = rng.uniform01();
    if (dice < options.pin_move_prob && max_units > 0) {
      const TaskId i = static_cast<TaskId>(rng.index(app.num_tasks()));
      next.pin[i] = rng.chance(0.3) ? -1 : static_cast<int>(rng.index(
                                               static_cast<std::size_t>(max_units)));
    } else if (dice < options.pin_move_prob + 0.3) {
      const TaskId a = static_cast<TaskId>(rng.index(app.num_tasks()));
      const TaskId b = static_cast<TaskId>(rng.index(app.num_tasks()));
      std::swap(next.priority[a], next.priority[b]);
    } else {
      const TaskId i = static_cast<TaskId>(rng.index(app.num_tasks()));
      next.priority[i] += rng.uniform(-3, 3);
    }

    Schedule trial(app.num_tasks());
    model.reset();
    const Time energy = decode(app, next, model, trial);
    ++out.evaluations;

    const double delta = static_cast<double>(energy) - static_cast<double>(current_energy);
    if (delta <= 0 || (energy < kTimeMax &&
                       rng.uniform01() < std::exp(-delta / std::max(1e-9, temperature)))) {
      current = std::move(next);
      current_energy = energy;
      if (energy < best_energy) {
        best_energy = energy;
        best = current;
        best_schedule = trial;
      }
    }
    temperature *= options.cooling;
  }

  out.best_energy = best_energy;
  out.feasible = best_energy == 0;
  out.schedule = std::move(best_schedule);
  return out;
}

}  // namespace

AnnealResult anneal_schedule_shared(const Application& app, const Capacities& caps,
                                    const AnnealOptions& options) {
  SharedModel model(app, caps);
  int max_units = 0;
  for (int u : caps.units) max_units = std::max(max_units, u);
  return anneal(app, model, max_units, options);
}

AnnealResult anneal_schedule_dedicated(const Application& app,
                                       const DedicatedPlatform& platform,
                                       const DedicatedConfig& config,
                                       const AnnealOptions& options) {
  DedicatedModel model(app, platform, config);
  return anneal(app, model, static_cast<int>(config.instance_types.size()), options);
}

AnnealResult anneal_schedule_shared(AnalysisSession& session, const Capacities& caps,
                                    const AnnealOptions& options) {
  const AnalysisResult& res = session.analyze();
  for (const ResourceBound& b : res.bounds) {
    if (caps.of(b.resource) < b.bound) {
      AnnealResult out;
      out.pruned_by_bounds = true;
      return out;
    }
  }
  return anneal_schedule_shared(session.app(), caps, options);
}

AnnealResult anneal_schedule_dedicated(AnalysisSession& session, const DedicatedConfig& config,
                                       const AnnealOptions& options) {
  const DedicatedPlatform* platform = session.platform();
  if (platform == nullptr) {
    throw ModelError("anneal_schedule_dedicated: session carries no platform");
  }
  const AnalysisResult& res = session.analyze();
  for (const ResourceBound& b : res.bounds) {
    if (config.total_units_of(*platform, b.resource) < b.bound) {
      AnnealResult out;
      out.pruned_by_bounds = true;
      return out;
    }
  }
  return anneal_schedule_dedicated(session.app(), *platform, config, options);
}

}  // namespace rtlb
