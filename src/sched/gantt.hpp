// ASCII Gantt rendering of schedules, one lane per execution unit.
//
// Used by the examples and handy when debugging scheduler behaviour:
//
//   CPU[0]  |aaa.bbbb......|
//   CPU[1]  |.cc...........|
//   r [--]  usage 2/2 peak
#pragma once

#include <string>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct GanttOptions {
  /// Horizontal resolution: ticks per character cell (>= 1).
  Time ticks_per_cell = 1;
  /// Cap on rendered width; longer horizons raise ticks_per_cell.
  std::size_t max_width = 100;
};

/// Render a shared-model schedule: one lane per (processor type, unit), plus
/// a usage lane per plain resource.
std::string render_gantt_shared(const Application& app, const Schedule& schedule,
                                const Capacities& caps, const GanttOptions& options = {});

/// Render a dedicated-model schedule: one lane per node instance.
std::string render_gantt_dedicated(const Application& app, const Schedule& schedule,
                                   const DedicatedPlatform& platform,
                                   const DedicatedConfig& config,
                                   const GanttOptions& options = {});

}  // namespace rtlb
