// Exhaustive feasibility search for small shared-model instances.
//
// This is the soundness oracle of the test suite: by enumerating EVERY
// placement (integer start times, symmetric-unit canonicalization) it decides
// exactly whether a feasible schedule exists for given capacities. The tests
// then assert the definitional property of Section 6:
//
//   capacities feasible  ==>  caps[r] >= LB_r for every r
//
// i.e. the minimum feasible unit count per resource can never undercut LB_r.
// Deliberately exponential; guarded by explicit limits.
#pragma once

#include <cstdint>
#include <optional>

#include "src/model/application.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct SearchLimits {
  /// Abort (throw) if the DFS expands more nodes than this.
  std::int64_t max_nodes = 20'000'000;
  /// Refuse tasks whose start-time range [lb, D - C] exceeds this width.
  Time max_window = 64;
};

/// True iff some schedule satisfies every constraint of `app` on a shared
/// system with `caps`. On success, `witness` (if non-null) receives a valid
/// schedule (certified by check_shared before returning).
bool exists_feasible_schedule_shared(const Application& app, const Capacities& caps,
                                     const SearchLimits& limits = {},
                                     Schedule* witness = nullptr);

/// Dedicated-model counterpart: exact feasibility of `app` on the concrete
/// machine `config`. Same exhaustive discipline (integer start times,
/// node-instance symmetry broken within each node type); the witness is
/// certified by check_dedicated. Used to prove the Section-7 cost bound
/// sound: no feasible machine can be cheaper than the ILP optimum.
bool exists_feasible_schedule_dedicated(const Application& app,
                                        const DedicatedPlatform& platform,
                                        const DedicatedConfig& config,
                                        const SearchLimits& limits = {},
                                        Schedule* witness = nullptr);

/// Minimum units of `r` (with all other capacities fixed as in `base`) for
/// which a feasible schedule exists; nullopt if none exists up to
/// `max_units`.
std::optional<int> min_units_exhaustive(const Application& app, ResourceId r, Capacities base,
                                        int max_units, const SearchLimits& limits = {});

/// Like min_units_exhaustive, but starting the upward scan at `start_at`
/// (e.g. LB_r -- the paper's pruning use) and reporting how many full
/// exhaustive searches were run. Each skipped level below LB_r is one
/// avoided infeasibility proof, the expensive step (bench_sched measures
/// the effect).
struct MinUnitsStats {
  std::optional<int> min_units;
  int searches_run = 0;
};
MinUnitsStats min_units_exhaustive_from(const Application& app, ResourceId r, Capacities base,
                                        int start_at, int max_units,
                                        const SearchLimits& limits = {});

}  // namespace rtlb
