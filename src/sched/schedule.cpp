#include "src/sched/schedule.hpp"

#include <algorithm>

namespace rtlb {

bool Schedule::complete() const {
  return std::all_of(items.begin(), items.end(),
                     [](const Item& it) { return it.placed(); });
}

Time Schedule::makespan(const Application& app) const {
  Time end = 0;
  for (TaskId i = 0; i < items.size(); ++i) {
    if (items[i].placed()) end = std::max(end, end_of(app, i));
  }
  return end;
}

int DedicatedConfig::total_units_of(const DedicatedPlatform& platform, ResourceId r) const {
  int total = 0;
  for (std::size_t t : instance_types) total += platform.node_type(t).units_of(r);
  return total;
}

Cost DedicatedConfig::total_cost(const DedicatedPlatform& platform) const {
  Cost total = 0;
  for (std::size_t t : instance_types) total += platform.node_type(t).cost;
  return total;
}

}  // namespace rtlb
