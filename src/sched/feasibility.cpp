#include "src/sched/feasibility.hpp"

#include <algorithm>
#include <map>

namespace rtlb {

namespace {

/// Peak number of simultaneously active intervals (half-open [s, e)).
int peak_overlap(std::vector<std::pair<Time, Time>> intervals) {
  std::vector<std::pair<Time, int>> events;
  events.reserve(intervals.size() * 2);
  for (const auto& [s, e] : intervals) {
    events.emplace_back(s, +1);
    events.emplace_back(e, -1);
  }
  // Ends sort before starts at the same instant (half-open semantics).
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  });
  int current = 0, peak = 0;
  for (const auto& [t, d] : events) {
    current += d;
    peak = std::max(peak, current);
  }
  return peak;
}

void check_windows(const Application& app, const Schedule& schedule,
                   std::vector<std::string>& out) {
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    const auto& it = schedule.items[i];
    if (!it.placed()) {
      out.push_back("task '" + t.name + "' is not placed");
      continue;
    }
    if (it.start < t.release) {
      out.push_back("task '" + t.name + "' starts before its release time");
    }
    if (it.start + t.comp > t.deadline) {
      out.push_back("task '" + t.name + "' misses its deadline");
    }
  }
}

void check_precedence(const Application& app, const Schedule& schedule, bool same_cpu_needs_type,
                      std::vector<std::string>& out) {
  for (TaskId j = 0; j < app.num_tasks(); ++j) {
    for (TaskId i : app.successors(j)) {
      if (!schedule.items[j].placed() || !schedule.items[i].placed()) continue;
      const bool co_located =
          schedule.items[j].unit == schedule.items[i].unit &&
          (!same_cpu_needs_type || app.task(j).proc == app.task(i).proc);
      const Time lag = co_located ? 0 : app.message(j, i);
      if (schedule.items[i].start < schedule.end_of(app, j) + lag) {
        out.push_back("edge '" + app.task(j).name + "'->'" + app.task(i).name +
                      "' violated (start before completion" +
                      (co_located ? "" : " + message latency") + ")");
      }
    }
  }
}

}  // namespace

std::vector<std::string> check_shared(const Application& app, const Schedule& schedule,
                                      const Capacities& caps) {
  std::vector<std::string> out;
  RTLB_CHECK(schedule.items.size() == app.num_tasks(), "schedule arity mismatch");
  check_windows(app, schedule, out);
  // In the shared model "same unit" is only meaningful within one processor
  // type: unit k of P1 and unit k of P2 are different CPUs.
  check_precedence(app, schedule, /*same_cpu_needs_type=*/true, out);

  // Processor exclusivity + capacity per type.
  std::map<std::pair<ResourceId, int>, std::vector<std::pair<Time, Time>>> per_cpu;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (!schedule.items[i].placed()) continue;
    const Task& t = app.task(i);
    if (schedule.items[i].unit >= caps.of(t.proc)) {
      out.push_back("task '" + t.name + "' placed on unit " +
                    std::to_string(schedule.items[i].unit) + " but only " +
                    std::to_string(caps.of(t.proc)) + " unit(s) of '" +
                    app.catalog().name(t.proc) + "' exist");
    }
    per_cpu[{t.proc, schedule.items[i].unit}].emplace_back(schedule.items[i].start,
                                                           schedule.end_of(app, i));
  }
  for (auto& [cpu, intervals] : per_cpu) {
    if (peak_overlap(intervals) > 1) {
      out.push_back("two tasks overlap on unit " + std::to_string(cpu.second) + " of '" +
                    app.catalog().name(cpu.first) + "'");
    }
  }

  // Plain-resource concurrency <= capacity.
  for (ResourceId r : app.resource_set()) {
    if (app.catalog().is_processor(r)) continue;
    std::vector<std::pair<Time, Time>> intervals;
    for (TaskId i : app.tasks_using(r)) {
      if (!schedule.items[i].placed()) continue;
      intervals.emplace_back(schedule.items[i].start, schedule.end_of(app, i));
    }
    const int peak = peak_overlap(std::move(intervals));
    if (peak > caps.of(r)) {
      out.push_back("resource '" + app.catalog().name(r) + "' needs " + std::to_string(peak) +
                    " concurrent units but only " + std::to_string(caps.of(r)) + " exist");
    }
  }
  return out;
}

std::vector<std::string> check_dedicated(const Application& app, const Schedule& schedule,
                                         const DedicatedPlatform& platform,
                                         const DedicatedConfig& config) {
  std::vector<std::string> out;
  RTLB_CHECK(schedule.items.size() == app.num_tasks(), "schedule arity mismatch");
  check_windows(app, schedule, out);
  // Node instances are globally numbered, so plain unit equality decides
  // co-location.
  check_precedence(app, schedule, /*same_cpu_needs_type=*/false, out);

  std::map<int, std::vector<std::pair<Time, Time>>> per_node;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (!schedule.items[i].placed()) continue;
    const Task& t = app.task(i);
    const int inst = schedule.items[i].unit;
    if (inst >= static_cast<int>(config.instance_types.size())) {
      out.push_back("task '" + t.name + "' placed on nonexistent node instance " +
                    std::to_string(inst));
      continue;
    }
    const NodeType& node = platform.node_type(config.instance_types[inst]);
    if (!node.can_host(t.proc, t.resources)) {
      out.push_back("task '" + t.name + "' placed on node type '" + node.name +
                    "' which cannot host it");
    }
    per_node[inst].emplace_back(schedule.items[i].start, schedule.end_of(app, i));
  }
  // One processor per node: node-local execution is strictly sequential
  // (which also serializes access to the node's dedicated resources).
  for (auto& [inst, intervals] : per_node) {
    if (peak_overlap(intervals) > 1) {
      out.push_back("two tasks overlap on node instance " + std::to_string(inst));
    }
  }
  return out;
}

}  // namespace rtlb
