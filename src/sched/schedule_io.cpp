#include "src/sched/schedule_io.hpp"

#include <istream>
#include <sstream>

#include "src/common/strings.hpp"

namespace rtlb {

std::string serialize_schedule(const Application& app, const Schedule& schedule) {
  RTLB_CHECK(schedule.items.size() == app.num_tasks(), "schedule arity mismatch");
  std::ostringstream out;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Schedule::Item& item = schedule.items[i];
    if (!item.placed()) {
      throw ModelError("serialize_schedule: task '" + app.task(i).name + "' is not placed");
    }
    out << "place " << app.task(i).name << " start " << item.start << " unit " << item.unit
        << "\n";
  }
  return out.str();
}

Schedule parse_schedule(const Application& app, std::istream& in) {
  Schedule schedule(app.num_tasks());
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> tok = split_ws(line);
    auto fail = [&](const std::string& msg) -> void {
      throw ModelError("line " + std::to_string(line_no) + ": " + msg);
    };
    if (tok[0] != "place" || tok.size() != 6 || tok[2] != "start" || tok[4] != "unit") {
      fail("expected 'place <task> start <tick> unit <index>'");
    }
    const TaskId id = app.find_task(tok[1]);
    if (id == kInvalidTask) fail("unknown task '" + tok[1] + "'");
    if (schedule.items[id].placed()) fail("duplicate placement of '" + tok[1] + "'");
    schedule.items[id].start = parse_int(tok[3], "start");
    const std::int64_t unit = parse_int(tok[5], "unit");
    if (unit < 0) fail("negative unit");
    schedule.items[id].unit = static_cast<int>(unit);
  }
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (!schedule.items[i].placed()) {
      throw ModelError("schedule leaves task '" + app.task(i).name + "' unplaced");
    }
  }
  return schedule;
}

Schedule parse_schedule_string(const Application& app, const std::string& text) {
  std::istringstream in(text);
  return parse_schedule(app, in);
}

}  // namespace rtlb
