#include "src/sched/list_scheduler.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/sched/interval_profile.hpp"

namespace rtlb {

// (declared in interval_profile.hpp)
std::vector<Time> effective_deadlines(const Application& app) {
  auto topo = app.dag().topological_order();
  RTLB_CHECK(topo.has_value(), "list scheduler: cyclic graph");
  std::vector<Time> d(app.num_tasks());
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const TaskId i = *it;
    d[i] = app.task(i).deadline;
    for (TaskId j : app.successors(i)) {
      d[i] = std::min(d[i], d[j] - app.task(j).comp - app.message(i, j));
    }
  }
  return d;
}

namespace {



/// Ready-queue policy: earliest effective deadline first, ties by id.
TaskId pop_ready(const std::vector<Time>& priority, std::vector<TaskId>& ready) {
  auto it = std::min_element(ready.begin(), ready.end(), [&](TaskId a, TaskId b) {
    if (priority[a] != priority[b]) return priority[a] < priority[b];
    return a < b;
  });
  TaskId picked = *it;
  ready.erase(it);
  return picked;
}

}  // namespace

ListScheduleResult list_schedule_shared(const Application& app, const Capacities& caps) {
  ListScheduleResult out;
  out.schedule = Schedule(app.num_tasks());
  const std::vector<Time> priority = effective_deadlines(app);

  // One profile per CPU instance, one per plain resource pool.
  std::map<std::pair<ResourceId, int>, IntervalProfile> cpu;
  std::map<ResourceId, IntervalProfile> pool;
  // Committed busy time per CPU instance, for load-balancing tie-breaks.
  std::map<std::pair<ResourceId, int>, Time> load;

  std::vector<std::size_t> missing_preds(app.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    missing_preds[i] = app.predecessors(i).size();
    if (missing_preds[i] == 0) ready.push_back(i);
  }

  std::size_t placed = 0;
  while (!ready.empty()) {
    const TaskId i = pop_ready(priority, ready);
    const Task& t = app.task(i);

    if (caps.of(t.proc) <= 0) {
      out.failed_task = i;
      out.failure = "no units of processor type '" + app.catalog().name(t.proc) + "'";
      return out;
    }
    for (ResourceId r : t.resources) {
      if (caps.of(r) <= 0) {
        out.failed_task = i;
        out.failure = "no units of resource '" + app.catalog().name(r) + "'";
        return out;
      }
    }

    Time best_start = kTimeMax;
    int best_unit = -1;
    for (int u = 0; u < caps.of(t.proc); ++u) {
      // Release + message-arrival lower bound for this unit choice.
      Time lb = t.release;
      for (TaskId j : app.predecessors(i)) {
        const bool co_located =
            app.task(j).proc == t.proc && out.schedule.items[j].unit == u;
        lb = std::max(lb, out.schedule.end_of(app, j) + (co_located ? 0 : app.message(j, i)));
      }
      // Iterate CPU fit and resource fits to a common fixed point.
      IntervalProfile& cpu_profile = cpu[{t.proc, u}];
      Time start = lb;
      for (;;) {
        Time next = cpu_profile.earliest_fit(start, t.comp, 1);
        for (ResourceId r : t.resources) {
          next = std::max(next, pool[r].earliest_fit(next, t.comp, caps.of(r)));
        }
        if (next == start) break;
        start = next;
      }
      // Tie-break equal starts toward the least-loaded unit: equal-start
      // placements are interchangeable now but a crowded unit is more likely
      // to be a successor's only co-location option later.
      const bool better =
          start < best_start ||
          (start == best_start && best_unit >= 0 &&
           load[{t.proc, u}] < load[{t.proc, best_unit}]);
      if (better) {
        best_start = start;
        best_unit = u;
      }
    }

    out.schedule.items[i] = {best_start, best_unit};
    cpu[{t.proc, best_unit}].add(best_start, best_start + t.comp);
    load[{t.proc, best_unit}] += t.comp;
    for (ResourceId r : t.resources) pool[r].add(best_start, best_start + t.comp);
    ++placed;

    if (best_start + t.comp > t.deadline) {
      out.failed_task = i;
      out.failure = "task '" + t.name + "' misses its deadline under EDF list scheduling";
      return out;
    }
    for (TaskId j : app.successors(i)) {
      if (--missing_preds[j] == 0) ready.push_back(j);
    }
  }

  RTLB_CHECK(placed == app.num_tasks(), "list scheduler lost tasks (cycle?)");
  out.feasible = true;
  return out;
}

ListScheduleResult list_schedule_dedicated(const Application& app,
                                           const DedicatedPlatform& platform,
                                           const DedicatedConfig& config) {
  ListScheduleResult out;
  out.schedule = Schedule(app.num_tasks());
  const std::vector<Time> priority = effective_deadlines(app);

  std::vector<IntervalProfile> node(config.instance_types.size());

  std::vector<std::size_t> missing_preds(app.num_tasks());
  std::vector<TaskId> ready;
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    missing_preds[i] = app.predecessors(i).size();
    if (missing_preds[i] == 0) ready.push_back(i);
  }

  while (!ready.empty()) {
    const TaskId i = pop_ready(priority, ready);
    const Task& t = app.task(i);

    Time best_start = kTimeMax;
    int best_inst = -1;
    for (std::size_t inst = 0; inst < config.instance_types.size(); ++inst) {
      const NodeType& type = platform.node_type(config.instance_types[inst]);
      if (!type.can_host(t.proc, t.resources)) continue;
      Time lb = t.release;
      for (TaskId j : app.predecessors(i)) {
        const bool co_located = out.schedule.items[j].unit == static_cast<int>(inst);
        lb = std::max(lb, out.schedule.end_of(app, j) + (co_located ? 0 : app.message(j, i)));
      }
      const Time start = node[inst].earliest_fit(lb, t.comp, 1);
      // Best fit: on equal start times prefer the cheapest capable node, so
      // resource-light tasks do not squat on scarce resource-rich nodes.
      const bool better =
          start < best_start ||
          (start == best_start && best_inst >= 0 &&
           type.cost < platform.node_type(config.instance_types[best_inst]).cost);
      if (better) {
        best_start = start;
        best_inst = static_cast<int>(inst);
      }
    }

    if (best_inst < 0) {
      out.failed_task = i;
      out.failure = "no node instance can host task '" + t.name + "'";
      return out;
    }
    out.schedule.items[i] = {best_start, best_inst};
    node[best_inst].add(best_start, best_start + t.comp);
    if (best_start + t.comp > t.deadline) {
      out.failed_task = i;
      out.failure = "task '" + t.name + "' misses its deadline under EDF list scheduling";
      return out;
    }
    for (TaskId j : app.successors(i)) {
      if (--missing_preds[j] == 0) ready.push_back(j);
    }
  }
  out.feasible = true;
  return out;
}

ProvisioningResult provision_shared(const Application& app, Capacities start,
                                    int max_total_units) {
  ProvisioningResult out;
  out.caps = std::move(start);
  for (;;) {
    ++out.rounds;
    ListScheduleResult attempt = list_schedule_shared(app, out.caps);
    if (attempt.feasible) {
      out.feasible = true;
      return out;
    }
    const int total = std::accumulate(out.caps.units.begin(), out.caps.units.end(), 0);
    if (total >= max_total_units) return out;
    // Grow the scarcest requirement of the task that failed.
    const Task& t = app.task(attempt.failed_task);
    ResourceId grow = t.proc;
    for (ResourceId r : t.resources) {
      if (out.caps.of(r) < out.caps.of(grow)) grow = r;
    }
    out.caps.set(grow, out.caps.of(grow) + 1);
  }
}

}  // namespace rtlb
