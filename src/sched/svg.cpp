#include "src/sched/svg.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <vector>

namespace rtlb {

namespace {

constexpr int kGutter = 120;  // label column
constexpr int kAxis = 24;     // time axis strip

/// Distinct fill per task id: rotate hue around the wheel.
std::string fill_for(TaskId i) {
  const int hue = static_cast<int>((i * 47) % 360);
  char buf[48];
  std::snprintf(buf, sizeof buf, "hsl(%d,62%%,62%%)", hue);
  return buf;
}

std::string escape_xml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render(const Application& app, const Schedule& schedule,
                   const std::vector<std::string>& lane_order,
                   const std::function<std::string(TaskId)>& lane_of,
                   const SvgOptions& options) {
  Time horizon = std::max<Time>(1, schedule.makespan(app));
  if (options.show_deadlines) {
    for (TaskId i = 0; i < app.num_tasks(); ++i) {
      if (app.task(i).deadline < kTimeMax / 2) {
        horizon = std::max(horizon, app.task(i).deadline);
      }
    }
  }
  const double px_per_tick = static_cast<double>(options.width) / static_cast<double>(horizon);
  auto x_of = [&](Time t) { return kGutter + px_per_tick * static_cast<double>(t); };

  std::map<std::string, int> lane_index;
  for (const std::string& lane : lane_order) {
    lane_index.emplace(lane, static_cast<int>(lane_index.size()));
  }
  const int height = kAxis + options.lane_height * static_cast<int>(lane_order.size()) + 8;

  std::string svg;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
                "font-family=\"sans-serif\" font-size=\"11\">\n",
                kGutter + options.width + 10, height);
  svg += buf;

  // Time axis with ~10 ticks.
  const Time step = std::max<Time>(1, horizon / 10);
  for (Time t = 0; t <= horizon; t += step) {
    std::snprintf(buf, sizeof buf,
                  "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#ccc\"/>\n"
                  "<text x=\"%.1f\" y=\"14\" fill=\"#666\">%lld</text>\n",
                  x_of(t), kAxis, x_of(t), height - 8, x_of(t) - 4,
                  static_cast<long long>(t));
    svg += buf;
  }

  // Lane labels and separators.
  for (const std::string& lane : lane_order) {
    const int y = kAxis + lane_index[lane] * options.lane_height;
    std::snprintf(buf, sizeof buf,
                  "<text x=\"4\" y=\"%d\" fill=\"#333\">%s</text>\n"
                  "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#eee\"/>\n",
                  y + options.lane_height / 2 + 4, escape_xml(lane).c_str(), kGutter, y,
                  kGutter + options.width, y);
    svg += buf;
  }

  // Task rects (+ optional deadline whiskers).
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (!schedule.items[i].placed()) continue;
    const std::string lane = lane_of(i);
    auto it = lane_index.find(lane);
    if (it == lane_index.end()) continue;
    const int y = kAxis + it->second * options.lane_height + 3;
    const double x = x_of(schedule.items[i].start);
    const double w =
        std::max(1.0, px_per_tick * static_cast<double>(app.task(i).comp) - 1.0);
    std::snprintf(buf, sizeof buf,
                  "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" rx=\"3\" "
                  "fill=\"%s\" stroke=\"#444\" stroke-width=\"0.5\">"
                  "<title>%s [%lld,%lld) unit %d</title></rect>\n",
                  x, y, w, options.lane_height - 6, fill_for(i).c_str(),
                  escape_xml(app.task(i).name).c_str(),
                  static_cast<long long>(schedule.items[i].start),
                  static_cast<long long>(schedule.end_of(app, i)), schedule.items[i].unit);
    svg += buf;
    if (w > 24) {
      std::snprintf(buf, sizeof buf, "<text x=\"%.1f\" y=\"%d\" fill=\"#222\">%s</text>\n",
                    x + 3, y + options.lane_height / 2 + 1,
                    escape_xml(app.task(i).name).c_str());
      svg += buf;
    }
    if (options.show_deadlines && app.task(i).deadline < kTimeMax / 2) {
      std::snprintf(buf, sizeof buf,
                    "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" stroke=\"#c33\" "
                    "stroke-dasharray=\"2,2\"/>\n",
                    x_of(app.task(i).deadline), y - 2, x_of(app.task(i).deadline),
                    y + options.lane_height - 4);
      svg += buf;
    }
  }

  svg += "</svg>\n";
  return svg;
}

}  // namespace

std::string render_svg_shared(const Application& app, const Schedule& schedule,
                              const Capacities& caps, const SvgOptions& options) {
  std::vector<std::string> lanes;
  for (ResourceId r = 0; r < app.catalog().size(); ++r) {
    if (!app.catalog().is_processor(r)) continue;
    for (int u = 0; u < caps.of(r); ++u) {
      lanes.push_back(app.catalog().name(r) + "[" + std::to_string(u) + "]");
    }
  }
  auto lane_of = [&](TaskId i) {
    return app.catalog().name(app.task(i).proc) + "[" +
           std::to_string(schedule.items[i].unit) + "]";
  };
  return render(app, schedule, lanes, lane_of, options);
}

std::string render_svg_dedicated(const Application& app, const Schedule& schedule,
                                 const DedicatedPlatform& platform,
                                 const DedicatedConfig& config, const SvgOptions& options) {
  std::vector<std::string> lanes;
  for (std::size_t inst = 0; inst < config.instance_types.size(); ++inst) {
    lanes.push_back(platform.node_type(config.instance_types[inst]).name + "#" +
                    std::to_string(inst));
  }
  auto lane_of = [&](TaskId i) {
    const auto inst = static_cast<std::size_t>(schedule.items[i].unit);
    if (inst >= config.instance_types.size()) return std::string();
    return platform.node_type(config.instance_types[inst]).name + "#" + std::to_string(inst);
  };
  return render(app, schedule, lanes, lane_of, options);
}

}  // namespace rtlb
