// Busy-interval bookkeeping shared by the constructive schedulers.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/types.hpp"
#include "src/model/application.hpp"

namespace rtlb {

/// Committed half-open busy intervals on one shared entity, answering
/// "earliest t >= lb where one more [t, t+dur) keeps concurrency <= cap".
class IntervalProfile {
 public:
  void add(Time s, Time e) { intervals_.emplace_back(s, e); }
  void clear() { intervals_.clear(); }

  Time earliest_fit(Time lb, Time dur, int cap) const {
    RTLB_CHECK(cap >= 1, "earliest_fit with zero capacity");
    // Candidate starts: lb itself and every committed end after lb. One of
    // them is feasible because all load eventually drains.
    std::vector<Time> candidates{lb};
    for (const auto& [s, e] : intervals_) {
      if (e > lb) candidates.push_back(e);
    }
    std::sort(candidates.begin(), candidates.end());
    for (Time t : candidates) {
      if (peak_in(t, t + dur) < cap) return t;
    }
    RTLB_CHECK(false, "earliest_fit: no candidate fits");
    return lb;
  }

  /// Peak concurrency of the committed intervals inside [t1, t2).
  int peak_in(Time t1, Time t2) const {
    std::vector<std::pair<Time, int>> events;
    for (const auto& [s, e] : intervals_) {
      const Time cs = std::max(s, t1);
      const Time ce = std::min(e, t2);
      if (cs < ce) {
        events.emplace_back(cs, +1);
        events.emplace_back(ce, -1);
      }
    }
    std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    int cur = 0, peak = 0;
    for (const auto& [t, d] : events) {
      cur += d;
      peak = std::max(peak, cur);
    }
    return peak;
  }

 private:
  std::vector<std::pair<Time, Time>> intervals_;
};

/// Effective deadlines with backward propagation (Blazewicz-style): a task
/// must leave room for every successor's computation and message, so its
/// real urgency is min(D_i, min_j (d'_j - C_j - m_ij)). Plain EDF on D_i
/// starves deep chains whose sinks are tight.
std::vector<Time> effective_deadlines(const Application& app);

}  // namespace rtlb
