#include "src/sched/gantt.hpp"

#include <algorithm>
#include <functional>
#include <map>

namespace rtlb {

namespace {

/// Task marker: a, b, ..., z, A, ..., Z, then '#'.
char marker(TaskId i) {
  if (i < 26) return static_cast<char>('a' + i);
  if (i < 52) return static_cast<char>('A' + (i - 26));
  return '#';
}

struct Lane {
  std::string label;
  std::string cells;
};

std::string render(const Application& app, const Schedule& schedule, Time horizon,
                   const GanttOptions& options,
                   const std::function<std::string(TaskId)>& lane_of,
                   std::vector<std::string> lane_order) {
  Time per_cell = std::max<Time>(1, options.ticks_per_cell);
  if (horizon > 0) {
    while (static_cast<std::size_t>(horizon / per_cell) + 1 > options.max_width) ++per_cell;
  }
  const std::size_t width = static_cast<std::size_t>(horizon / per_cell) + 1;

  std::map<std::string, std::string> lanes;
  for (const std::string& label : lane_order) lanes[label] = std::string(width, '.');

  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    if (!schedule.items[i].placed()) continue;
    const std::string label = lane_of(i);
    auto it = lanes.find(label);
    if (it == lanes.end()) continue;
    const Time start = schedule.items[i].start;
    const Time end = start + app.task(i).comp;
    for (Time t = start; t < end; ++t) {
      const auto cell = static_cast<std::size_t>(t / per_cell);
      if (cell < width) it->second[cell] = marker(i);
    }
  }

  std::size_t label_width = 0;
  for (const std::string& label : lane_order) label_width = std::max(label_width, label.size());

  std::string out;
  out += "time: 1 cell = " + std::to_string(per_cell) + " tick(s), horizon " +
         std::to_string(horizon) + "\n";
  for (const std::string& label : lane_order) {
    out += label + std::string(label_width - label.size(), ' ') + " |" + lanes[label] + "|\n";
  }
  out += "\nlegend:";
  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    out += " ";
    out += marker(i);
    out += "=" + app.task(i).name;
  }
  out += "\n";
  return out;
}

}  // namespace

std::string render_gantt_shared(const Application& app, const Schedule& schedule,
                                const Capacities& caps, const GanttOptions& options) {
  const Time horizon = schedule.makespan(app);
  std::vector<std::string> lane_order;
  for (ResourceId r = 0; r < app.catalog().size(); ++r) {
    if (!app.catalog().is_processor(r)) continue;
    for (int u = 0; u < caps.of(r); ++u) {
      lane_order.push_back(app.catalog().name(r) + "[" + std::to_string(u) + "]");
    }
  }
  auto lane_of = [&](TaskId i) {
    return app.catalog().name(app.task(i).proc) + "[" +
           std::to_string(schedule.items[i].unit) + "]";
  };
  return render(app, schedule, horizon, options, lane_of, std::move(lane_order));
}

std::string render_gantt_dedicated(const Application& app, const Schedule& schedule,
                                   const DedicatedPlatform& platform,
                                   const DedicatedConfig& config,
                                   const GanttOptions& options) {
  const Time horizon = schedule.makespan(app);
  std::vector<std::string> lane_order;
  for (std::size_t inst = 0; inst < config.instance_types.size(); ++inst) {
    lane_order.push_back(platform.node_type(config.instance_types[inst]).name + "#" +
                         std::to_string(inst));
  }
  auto lane_of = [&](TaskId i) {
    const auto inst = static_cast<std::size_t>(schedule.items[i].unit);
    if (inst >= config.instance_types.size()) return std::string();
    return platform.node_type(config.instance_types[inst]).name + "#" + std::to_string(inst);
  };
  return render(app, schedule, horizon, options, lane_of, std::move(lane_order));
}

}  // namespace rtlb
