// Exact feasibility by branch-and-bound, pruned with the paper's own
// interval-density argument.
//
// The plain exhaustive search (sched/optimal.hpp) enumerates placements
// blindly; this version maintains, at every node of the search tree,
//  (a) dynamic release propagation: a lower bound on each unplaced task's
//      start given the committed prefix (messages optimistically elided,
//      so it stays a true lower bound), pruning when any window collapses;
//  (b) the Section-6 density test on the REMAINING workload: placed tasks
//      contribute their exact committed intervals, unplaced tasks their
//      minimum overlap (Theorems 3-4) over dynamic windows; if any
//      resource's mandatory demand exceeds capacity * width on any candidate
//      interval, the subtree is infeasible and is cut.
//
// Same answers as the plain search (both exact); bench_sched compares the
// node counts -- the paper's bound working as a pruning device one level
// below the synthesis search it was proposed for.
#pragma once

#include "src/sched/optimal.hpp"

namespace rtlb {

struct BranchBoundStats {
  std::int64_t nodes_explored = 0;
  std::int64_t pruned_by_window = 0;
  std::int64_t pruned_by_density = 0;
};

/// Exact: true iff a feasible schedule exists on a shared system with
/// `caps`. Witness (if non-null) is certified with check_shared.
bool exists_feasible_schedule_bb(const Application& app, const Capacities& caps,
                                 const SearchLimits& limits = {}, Schedule* witness = nullptr,
                                 BranchBoundStats* stats = nullptr);

}  // namespace rtlb
