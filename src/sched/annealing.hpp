// Simulated-annealing scheduler: a second, stronger heuristic above the EDF
// list scheduler.
//
// The EDF scheduler commits greedily and cannot discover solutions that need
// deliberate co-location clusters (the paper's own example requires them --
// see tests/test_sim.cpp). This scheduler searches the space of PRIORITY
// PERMUTATIONS and UNIT PINNINGS instead: a candidate solution is a task
// priority vector plus an optional preferred unit per task; decoding runs
// the same insertion-based placement as the list scheduler; the energy is
// total deadline tardiness (0 == feasible). Annealing over (priority, pin)
// moves escapes the greedy trap while every decoded schedule remains valid
// by construction except for deadlines, which the energy drives to zero.
//
// Deterministic for a fixed seed. Used by bench_sched to measure how much
// of the LB-to-heuristic gap is the scheduler's fault rather than the
// bound's.
#pragma once

#include <cstdint>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct AnnealOptions {
  std::uint64_t seed = 1;
  /// Total decode evaluations (the expensive step).
  int max_evaluations = 4000;
  /// Initial temperature as a fraction of the initial energy.
  double initial_temperature_frac = 0.3;
  /// Geometric cooling factor applied per evaluation.
  double cooling = 0.999;
  /// Probability that a move re-pins a task's unit instead of swapping
  /// priorities.
  double pin_move_prob = 0.4;
};

struct AnnealResult {
  Schedule schedule{0};
  bool feasible = false;
  /// Total tardiness of the best solution found (0 when feasible).
  Time best_energy = 0;
  int evaluations = 0;
  /// True when a session-backed call rejected the system on the Section-6
  /// lower bounds WITHOUT annealing (supply below some LB_r proves no
  /// schedule exists); evaluations is then 0 and best_energy meaningless.
  bool pruned_by_bounds = false;
};

/// Anneal on a shared-model system with the given capacities.
AnnealResult anneal_schedule_shared(const Application& app, const Capacities& caps,
                                    const AnnealOptions& options = {});

/// Anneal on a dedicated-model machine.
AnnealResult anneal_schedule_dedicated(const Application& app,
                                       const DedicatedPlatform& platform,
                                       const DedicatedConfig& config,
                                       const AnnealOptions& options = {});

class AnalysisSession;

/// Session-backed variants: check the candidate system's supply against the
/// memoized LB_r values first and skip the (expensive) anneal when the
/// bounds already refute it -- the paper's pruning claim applied to the
/// annealing probe. The dedicated variant takes the platform from the
/// session (ModelError when it has none).
AnnealResult anneal_schedule_shared(AnalysisSession& session, const Capacities& caps,
                                    const AnnealOptions& options = {});
AnnealResult anneal_schedule_dedicated(AnalysisSession& session, const DedicatedConfig& config,
                                       const AnnealOptions& options = {});

}  // namespace rtlb
