// Deadline-driven list scheduler for both system models.
//
// A classic constructive heuristic: tasks become ready when all predecessors
// are placed; among ready tasks the one with the earliest deadline goes
// first, onto the execution unit giving it the earliest feasible start
// (accounting for message latency to off-unit predecessors and for resource
// capacities). It is NOT optimal -- that is the point: together with the
// lower bound it brackets the optimum from above (bench_tightness), and it
// serves as the feasibility probe inside the synthesis search.
#pragma once

#include <string>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct ListScheduleResult {
  Schedule schedule;
  bool feasible = false;
  /// On failure: the task that could not meet its deadline (or be placed).
  TaskId failed_task = kInvalidTask;
  std::string failure;

  ListScheduleResult() : schedule(0) {}
};

/// Shared model: `caps` gives the provisioned units per processor type and
/// resource.
ListScheduleResult list_schedule_shared(const Application& app, const Capacities& caps);

/// Dedicated model: schedule onto the concrete node instances of `config`.
ListScheduleResult list_schedule_dedicated(const Application& app,
                                           const DedicatedPlatform& platform,
                                           const DedicatedConfig& config);

/// Grow capacities from `start` (typically the LB_r values) until the list
/// scheduler succeeds, incrementing the failing task's scarcest requirement
/// each round. Returns the first capacities that worked; `max_total_units`
/// caps the search. Feasible flag false if the cap was hit.
struct ProvisioningResult {
  Capacities caps;
  bool feasible = false;
  int rounds = 0;
};
ProvisioningResult provision_shared(const Application& app, Capacities start,
                                    int max_total_units);

}  // namespace rtlb
