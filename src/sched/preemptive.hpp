// Sliced (preemptive) scheduling -- the execution model Theorem 3 assumes.
//
// Everywhere else in the library a task occupies one contiguous interval
// (always valid, even for preemptive tasks). This module adds the real
// thing: schedules made of SLICES, an event-driven preemptive-EDF dispatcher
// that produces them, and a validator. It closes the operational loop on the
// paper's preemptive analysis: instances exist that are feasible only with
// preemption (one lives in tests/test_preemptive.cpp), and on them the
// preemptive bound (Theorem 3) is achievable where the non-preemptive bound
// (Theorem 4) correctly demands more hardware.
//
// Model notes: non-preemptive tasks, once started, run to completion;
// preemptive tasks may be suspended and resumed (possibly on another unit --
// migration is allowed in the shared model). Resources are held only while a
// slice runs. The dispatcher charges the full message latency m_ij on every
// edge (it does not exploit co-location, which is ill-defined under
// migration); that is conservative, never invalid.
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct Slice {
  TaskId task = kInvalidTask;
  Time start = 0;
  Time end = 0;
  int unit = 0;  // unit index within the task's processor type
};

struct SlicedSchedule {
  /// All slices, sorted by start time.
  std::vector<Slice> slices;

  /// Completion time of task i (end of its last slice); -1 if absent.
  Time completion_of(TaskId i) const;
  /// Total executed time of task i across slices.
  Time executed(TaskId i) const;
};

struct PreemptiveResult {
  SlicedSchedule schedule;
  bool feasible = false;
  std::vector<TaskId> missed;
  /// Number of preemptions (a running task displaced before completion).
  int preemptions = 0;
};

/// Event-driven preemptive EDF (effective deadlines) on a shared system.
PreemptiveResult edf_preemptive_shared(const Application& app, const Capacities& caps);

/// All violations of a sliced schedule: per-unit slice overlaps, wrong total
/// execution, windows, precedence with message latency (edge j->i requires
/// i's first slice at or after j's completion + m_ji), non-preemptive tasks
/// split into several slices, resource over-capacity.
std::vector<std::string> check_sliced(const Application& app, const SlicedSchedule& schedule,
                                      const Capacities& caps);

}  // namespace rtlb
