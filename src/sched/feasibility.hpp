// Static feasibility validation of a schedule against every constraint of
// the application model: releases, deadlines, precedence with communication
// latency, processor exclusivity, and resource capacities.
//
// This validator is the ground truth the rest of the repository leans on:
// the list scheduler's output is re-checked here, the exhaustive search
// certifies its witnesses here, and the discrete-event simulator must agree
// with it (cross-checked in the tests).
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

/// All violations of `schedule` on a shared-model system with the given
/// capacities. Empty result == feasible.
std::vector<std::string> check_shared(const Application& app, const Schedule& schedule,
                                      const Capacities& caps);

/// All violations on a dedicated-model machine built as `config`.
std::vector<std::string> check_dedicated(const Application& app, const Schedule& schedule,
                                         const DedicatedPlatform& platform,
                                         const DedicatedConfig& config);

inline bool feasible_shared(const Application& app, const Schedule& s, const Capacities& c) {
  return check_shared(app, s, c).empty();
}
inline bool feasible_dedicated(const Application& app, const Schedule& s,
                               const DedicatedPlatform& p, const DedicatedConfig& cfg) {
  return check_dedicated(app, s, p, cfg).empty();
}

}  // namespace rtlb
