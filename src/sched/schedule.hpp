// Schedule and capacity records shared by the scheduler, validator,
// simulator, and synthesis search.
//
// A Schedule places every task at a start time on an execution unit:
//  - shared model: `unit` is an instance index within the task's processor
//    type (two tasks with equal (proc type, unit) share a physical CPU);
//  - dedicated model: `unit` is a node-instance index into an external
//    instance-type list.
// Tasks are placed non-preemptively ([start, start+C)); that is always a
// valid execution of a preemptive task too.
#pragma once

#include <string>
#include <vector>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"

namespace rtlb {

struct Schedule {
  struct Item {
    Time start = -1;
    int unit = -1;
    bool placed() const { return unit >= 0; }
  };

  std::vector<Item> items;  // indexed by TaskId

  explicit Schedule(std::size_t num_tasks = 0) : items(num_tasks) {}

  bool complete() const;

  Time end_of(const Application& app, TaskId i) const {
    return items[i].start + app.task(i).comp;
  }

  /// Latest completion over placed tasks.
  Time makespan(const Application& app) const;
};

/// Units provisioned per resource/processor type (shared model), indexed by
/// ResourceId.
struct Capacities {
  std::vector<int> units;

  Capacities() = default;
  Capacities(std::size_t catalog_size, int default_units)
      : units(catalog_size, default_units) {}

  int of(ResourceId r) const { return r < units.size() ? units[r] : 0; }
  void set(ResourceId r, int n) {
    RTLB_CHECK(r < units.size(), "capacity index out of range");
    units[r] = n;
  }
};

/// A concrete dedicated-model machine: one entry per node instance, holding
/// the index of its node type in the platform.
struct DedicatedConfig {
  std::vector<std::size_t> instance_types;

  /// Units of resource r provided across all instances (for reports).
  int total_units_of(const DedicatedPlatform& platform, ResourceId r) const;
  Cost total_cost(const DedicatedPlatform& platform) const;
};

}  // namespace rtlb
