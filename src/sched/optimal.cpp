#include "src/sched/optimal.hpp"

#include <algorithm>

#include "src/sched/feasibility.hpp"

namespace rtlb {

namespace {

class Search {
 public:
  Search(const Application& app, const Capacities& caps, const SearchLimits& limits)
      : app_(app), caps_(caps), limits_(limits), schedule_(app.num_tasks()) {
    auto topo = app.dag().topological_order();
    if (!topo) throw ModelError("exhaustive search: cyclic graph");
    order_ = *topo;
    units_used_.assign(app.catalog().size(), 0);
  }

  bool run(Schedule* witness) {
    if (dfs(0)) {
      if (witness != nullptr) *witness = schedule_;
      return true;
    }
    return false;
  }

 private:
  bool dfs(std::size_t depth) {
    if (depth == order_.size()) return true;
    const TaskId i = order_[depth];
    const Task& t = app_.task(i);
    if (caps_.of(t.proc) <= 0) return false;
    for (ResourceId r : t.resources) {
      if (caps_.of(r) <= 0) return false;
    }

    // Unit symmetry: within a processor type only the units already used,
    // plus one fresh one, are distinguishable.
    const int unit_limit = std::min(caps_.of(t.proc), units_used_[t.proc] + 1);
    for (int u = 0; u < unit_limit; ++u) {
      Time lb = t.release;
      for (TaskId j : app_.predecessors(i)) {
        const bool co_located = app_.task(j).proc == t.proc && schedule_.items[j].unit == u;
        lb = std::max(lb,
                      schedule_.end_of(app_, j) + (co_located ? 0 : app_.message(j, i)));
      }
      const Time hi = t.deadline - t.comp;
      if (hi - lb > limits_.max_window) {
        throw std::runtime_error("exhaustive search: start window of task '" + t.name +
                                 "' wider than SearchLimits.max_window");
      }
      for (Time start = lb; start <= hi; ++start) {
        if (++nodes_ > limits_.max_nodes) {
          throw std::runtime_error("exhaustive search: node budget exhausted");
        }
        if (!placement_ok(i, start, u)) continue;
        schedule_.items[i] = {start, u};
        const int prev_used = units_used_[t.proc];
        units_used_[t.proc] = std::max(units_used_[t.proc], u + 1);
        if (dfs(depth + 1)) return true;
        units_used_[t.proc] = prev_used;
        schedule_.items[i] = {};
      }
    }
    return false;
  }

  bool placement_ok(TaskId i, Time start, int unit) const {
    const Task& t = app_.task(i);
    const Time end = start + t.comp;

    // CPU exclusivity against placed tasks.
    for (TaskId j = 0; j < app_.num_tasks(); ++j) {
      if (j == i || !schedule_.items[j].placed()) continue;
      const Task& tj = app_.task(j);
      if (tj.proc == t.proc && schedule_.items[j].unit == unit &&
          schedule_.items[j].start < end && start < schedule_.end_of(app_, j)) {
        return false;
      }
    }

    // Resource concurrency: peak over [start, end) among placed users of r,
    // plus this task, must stay within capacity. Evaluate at candidate
    // instants (start and the placed users' starts inside the window).
    for (ResourceId r : t.resources) {
      std::vector<std::pair<Time, Time>> users;
      for (TaskId j : app_.tasks_using(r)) {
        if (j == i || !schedule_.items[j].placed()) continue;
        const Time s = std::max(schedule_.items[j].start, start);
        const Time e = std::min(schedule_.end_of(app_, j), end);
        if (s < e) users.emplace_back(s, e);
      }
      std::vector<Time> instants{start};
      for (const auto& [s, e] : users) instants.push_back(s);
      for (Time at : instants) {
        int concurrent = 1;  // this task
        for (const auto& [s, e] : users) {
          if (s <= at && at < e) ++concurrent;
        }
        if (concurrent > caps_.of(r)) return false;
      }
    }
    return true;
  }

  const Application& app_;
  const Capacities& caps_;
  const SearchLimits& limits_;
  Schedule schedule_;
  std::vector<TaskId> order_;
  std::vector<int> units_used_;  // per processor type (indexed by ResourceId)
  std::int64_t nodes_ = 0;
};

class DedicatedSearch {
 public:
  DedicatedSearch(const Application& app, const DedicatedPlatform& platform,
                  const DedicatedConfig& config, const SearchLimits& limits)
      : app_(app), platform_(platform), config_(config), limits_(limits),
        schedule_(app.num_tasks()) {
    auto topo = app.dag().topological_order();
    if (!topo) throw ModelError("exhaustive search: cyclic graph");
    order_ = *topo;
    // Instances of the same node type are interchangeable until used.
    used_of_type_.assign(platform.num_node_types(), 0);
    instances_by_type_.resize(platform.num_node_types());
    for (std::size_t inst = 0; inst < config.instance_types.size(); ++inst) {
      instances_by_type_[config.instance_types[inst]].push_back(static_cast<int>(inst));
    }
  }

  bool run(Schedule* witness) {
    if (dfs(0)) {
      if (witness != nullptr) *witness = schedule_;
      return true;
    }
    return false;
  }

 private:
  bool dfs(std::size_t depth) {
    if (depth == order_.size()) return true;
    const TaskId i = order_[depth];
    const Task& t = app_.task(i);

    for (std::size_t type = 0; type < platform_.num_node_types(); ++type) {
      if (!platform_.node_type(type).can_host(t.proc, t.resources)) continue;
      // Symmetry: only the used instances of this type, plus one fresh one.
      const auto& pool = instances_by_type_[type];
      const int limit = std::min<int>(static_cast<int>(pool.size()), used_of_type_[type] + 1);
      for (int k = 0; k < limit; ++k) {
        const int inst = pool[static_cast<std::size_t>(k)];
        Time lb = t.release;
        for (TaskId j : app_.predecessors(i)) {
          const bool co_located = schedule_.items[j].unit == inst;
          lb = std::max(lb,
                        schedule_.end_of(app_, j) + (co_located ? 0 : app_.message(j, i)));
        }
        const Time hi = t.deadline - t.comp;
        if (hi - lb > limits_.max_window) {
          throw std::runtime_error("exhaustive search: start window of task '" + t.name +
                                   "' wider than SearchLimits.max_window");
        }
        for (Time start = lb; start <= hi; ++start) {
          if (++nodes_ > limits_.max_nodes) {
            throw std::runtime_error("exhaustive search: node budget exhausted");
          }
          if (!node_free(i, inst, start)) continue;
          schedule_.items[i] = {start, inst};
          const int prev_used = used_of_type_[type];
          used_of_type_[type] = std::max(used_of_type_[type], k + 1);
          if (dfs(depth + 1)) return true;
          used_of_type_[type] = prev_used;
          schedule_.items[i] = {};
        }
      }
    }
    return false;
  }

  bool node_free(TaskId i, int inst, Time start) const {
    const Time end = start + app_.task(i).comp;
    for (TaskId j = 0; j < app_.num_tasks(); ++j) {
      if (j == i || !schedule_.items[j].placed()) continue;
      if (schedule_.items[j].unit == inst && schedule_.items[j].start < end &&
          start < schedule_.end_of(app_, j)) {
        return false;
      }
    }
    return true;
  }

  const Application& app_;
  const DedicatedPlatform& platform_;
  const DedicatedConfig& config_;
  const SearchLimits& limits_;
  Schedule schedule_;
  std::vector<TaskId> order_;
  std::vector<int> used_of_type_;
  std::vector<std::vector<int>> instances_by_type_;
  std::int64_t nodes_ = 0;
};

}  // namespace

bool exists_feasible_schedule_dedicated(const Application& app,
                                        const DedicatedPlatform& platform,
                                        const DedicatedConfig& config,
                                        const SearchLimits& limits, Schedule* witness) {
  Schedule found(app.num_tasks());
  DedicatedSearch search(app, platform, config, limits);
  if (!search.run(&found)) return false;
  const auto violations = check_dedicated(app, found, platform, config);
  RTLB_CHECK(violations.empty(), "exhaustive dedicated search produced an invalid schedule: " +
                                     (violations.empty() ? "" : violations.front()));
  if (witness != nullptr) *witness = found;
  return true;
}

bool exists_feasible_schedule_shared(const Application& app, const Capacities& caps,
                                     const SearchLimits& limits, Schedule* witness) {
  Schedule found(app.num_tasks());
  Search search(app, caps, limits);
  if (!search.run(&found)) return false;
  // Certify the witness before handing it out.
  const auto violations = check_shared(app, found, caps);
  RTLB_CHECK(violations.empty(), "exhaustive search produced an invalid schedule: " +
                                     (violations.empty() ? "" : violations.front()));
  if (witness != nullptr) *witness = found;
  return true;
}

std::optional<int> min_units_exhaustive(const Application& app, ResourceId r, Capacities base,
                                        int max_units, const SearchLimits& limits) {
  return min_units_exhaustive_from(app, r, std::move(base), 0, max_units, limits).min_units;
}

MinUnitsStats min_units_exhaustive_from(const Application& app, ResourceId r, Capacities base,
                                        int start_at, int max_units,
                                        const SearchLimits& limits) {
  MinUnitsStats stats;
  for (int u = start_at; u <= max_units; ++u) {
    base.set(r, u);
    ++stats.searches_run;
    if (exists_feasible_schedule_shared(app, base, limits)) {
      stats.min_units = u;
      return stats;
    }
  }
  return stats;
}

}  // namespace rtlb
