#include "src/sched/preemptive.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "src/sched/interval_profile.hpp"

namespace rtlb {

Time SlicedSchedule::completion_of(TaskId i) const {
  Time end = -1;
  for (const Slice& s : slices) {
    if (s.task == i) end = std::max(end, s.end);
  }
  return end;
}

Time SlicedSchedule::executed(TaskId i) const {
  Time total = 0;
  for (const Slice& s : slices) {
    if (s.task == i) total += s.end - s.start;
  }
  return total;
}

PreemptiveResult edf_preemptive_shared(const Application& app, const Capacities& caps) {
  PreemptiveResult out;
  const std::size_t n = app.num_tasks();
  if (n == 0) {
    out.feasible = true;
    return out;
  }
  const std::vector<Time> priority = effective_deadlines(app);

  std::vector<Time> remaining(n);
  std::vector<Time> arrival(n);   // earliest instant all inputs are in
  std::vector<Time> completion(n, -1);
  std::vector<bool> started(n, false);  // matters for non-preemptive tasks
  std::vector<int> last_unit(n, -1);
  std::vector<std::size_t> missing_preds(n);
  for (TaskId i = 0; i < n; ++i) {
    remaining[i] = app.task(i).comp;
    arrival[i] = app.task(i).release;
    missing_preds[i] = app.predecessors(i).size();
  }

  std::vector<TaskId> prev_running;
  Time now = 0;
  // Coarse progress guard: every loop iteration either runs work or jumps to
  // a strictly later event, and both are bounded.
  for (std::size_t guard = 0; guard < 16 * n * n + 64; ++guard) {
    // --- choose the running set at `now` -------------------------------
    std::vector<TaskId> candidates;
    for (TaskId i = 0; i < n; ++i) {
      if (completion[i] >= 0 || remaining[i] <= 0) continue;
      if (missing_preds[i] == 0 && arrival[i] <= now) candidates.push_back(i);
    }
    // Non-preemptive started tasks are committed; they allocate first, then
    // EDF order.
    std::stable_sort(candidates.begin(), candidates.end(), [&](TaskId a, TaskId b) {
      const bool ca = started[a] && !app.task(a).preemptive;
      const bool cb = started[b] && !app.task(b).preemptive;
      if (ca != cb) return ca;
      if (priority[a] != priority[b]) return priority[a] < priority[b];
      return a < b;
    });

    std::map<ResourceId, int> cpu_used;       // per processor type
    std::map<ResourceId, int> res_used;       // per plain resource
    std::map<ResourceId, std::set<int>> unit_taken;
    std::vector<TaskId> running;
    for (TaskId i : candidates) {
      const Task& t = app.task(i);
      if (cpu_used[t.proc] >= caps.of(t.proc)) continue;
      bool resources_ok = true;
      for (ResourceId r : t.resources) {
        if (res_used[r] >= caps.of(r)) resources_ok = false;
      }
      if (!resources_ok) continue;
      ++cpu_used[t.proc];
      for (ResourceId r : t.resources) ++res_used[r];
      running.push_back(i);
    }
    // Stable unit assignment: keep the previous unit when free.
    for (TaskId i : running) {
      const Task& t = app.task(i);
      auto& taken = unit_taken[t.proc];
      int unit = last_unit[i];
      if (unit < 0 || unit >= caps.of(t.proc) || taken.count(unit) > 0) {
        unit = 0;
        while (taken.count(unit) > 0) ++unit;
      }
      taken.insert(unit);
      last_unit[i] = unit;
    }
    for (TaskId i : prev_running) {
      if (completion[i] < 0 && remaining[i] > 0 &&
          std::find(running.begin(), running.end(), i) == running.end()) {
        ++out.preemptions;
      }
    }

    // --- find the next event --------------------------------------------
    Time next = kTimeMax;
    for (TaskId i : running) next = std::min(next, now + remaining[i]);
    for (TaskId i = 0; i < n; ++i) {
      if (completion[i] >= 0) continue;
      if (missing_preds[i] == 0 && arrival[i] > now) next = std::min(next, arrival[i]);
    }
    if (next == kTimeMax) break;  // nothing runs and nothing will arrive

    // --- emit slices for [now, next) ------------------------------------
    for (TaskId i : running) {
      started[i] = true;
      // Merge with this task's immediately preceding contiguous slice.
      bool merged = false;
      for (auto it = out.schedule.slices.rbegin(); it != out.schedule.slices.rend(); ++it) {
        if (it->task == i) {
          if (it->end == now && it->unit == last_unit[i]) {
            it->end = next;
            merged = true;
          }
          break;
        }
      }
      if (!merged) out.schedule.slices.push_back(Slice{i, now, next, last_unit[i]});
      remaining[i] -= next - now;
      if (remaining[i] == 0) {
        completion[i] = next;
        if (next > app.task(i).deadline) out.missed.push_back(i);
        for (TaskId j : app.successors(i)) {
          arrival[j] = std::max({arrival[j], app.task(j).release,
                                 next + app.message(i, j)});
          --missing_preds[j];
        }
      }
    }
    prev_running = std::move(running);
    now = next;
  }

  std::sort(out.schedule.slices.begin(), out.schedule.slices.end(),
            [](const Slice& a, const Slice& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });
  bool all_done = true;
  for (TaskId i = 0; i < n; ++i) {
    if (completion[i] < 0) all_done = false;
  }
  out.feasible = all_done && out.missed.empty();
  return out;
}

std::vector<std::string> check_sliced(const Application& app, const SlicedSchedule& schedule,
                                      const Capacities& caps) {
  std::vector<std::string> out;

  for (const Slice& s : schedule.slices) {
    if (s.start >= s.end) out.push_back("empty or inverted slice");
    if (s.task >= app.num_tasks()) {
      out.push_back("slice references a nonexistent task");
      return out;
    }
  }

  for (TaskId i = 0; i < app.num_tasks(); ++i) {
    const Task& t = app.task(i);
    const Time executed = schedule.executed(i);
    if (executed != t.comp) {
      out.push_back("task '" + t.name + "' executes " + std::to_string(executed) +
                    " ticks, needs " + std::to_string(t.comp));
      continue;
    }
    Time first = kTimeMax;
    int slice_count = 0;
    for (const Slice& s : schedule.slices) {
      if (s.task != i) continue;
      ++slice_count;
      first = std::min(first, s.start);
      if (s.start < t.release) {
        out.push_back("task '" + t.name + "' runs before its release");
      }
    }
    const Time completion = schedule.completion_of(i);
    if (completion > t.deadline) {
      out.push_back("task '" + t.name + "' misses its deadline");
    }
    if (!t.preemptive && slice_count > 1) {
      out.push_back("non-preemptive task '" + t.name + "' is split into slices");
    }
    for (TaskId j : app.predecessors(i)) {
      const Time needed = schedule.completion_of(j) + app.message(j, i);
      if (first < needed) {
        out.push_back("task '" + t.name + "' starts before the message from '" +
                      app.task(j).name + "' arrives");
      }
    }
  }

  // Per (proc type, unit) exclusivity and per-resource capacity: sweep.
  std::map<std::pair<ResourceId, int>, std::vector<std::pair<Time, Time>>> per_cpu;
  for (const Slice& s : schedule.slices) {
    const Task& t = app.task(s.task);
    if (s.unit < 0 || s.unit >= caps.of(t.proc)) {
      out.push_back("slice of '" + t.name + "' on a nonexistent unit");
      continue;
    }
    per_cpu[{t.proc, s.unit}].emplace_back(s.start, s.end);
  }
  for (auto& [cpu, intervals] : per_cpu) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t k = 0; k + 1 < intervals.size(); ++k) {
      if (intervals[k + 1].first < intervals[k].second) {
        out.push_back("overlapping slices on unit " + std::to_string(cpu.second) + " of '" +
                      app.catalog().name(cpu.first) + "'");
        break;
      }
    }
  }
  for (ResourceId r : app.resource_set()) {
    if (app.catalog().is_processor(r)) continue;
    std::vector<std::pair<Time, int>> events;
    for (const Slice& s : schedule.slices) {
      if (!app.task(s.task).uses(r)) continue;
      events.emplace_back(s.start, +1);
      events.emplace_back(s.end, -1);
    }
    std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    int cur = 0;
    for (const auto& [t, d] : events) {
      cur += d;
      if (cur > caps.of(r)) {
        out.push_back("resource '" + app.catalog().name(r) + "' over capacity");
        break;
      }
    }
  }
  return out;
}

}  // namespace rtlb
