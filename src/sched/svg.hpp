// SVG rendering of schedules -- the publication-quality counterpart of the
// ASCII Gantt (sched/gantt.hpp). Produces a self-contained <svg> document:
// one horizontal lane per execution unit, one rounded rect per task (colored
// by task id), release/deadline whiskers, and a time axis.
#pragma once

#include <string>

#include "src/model/application.hpp"
#include "src/model/platform.hpp"
#include "src/sched/schedule.hpp"

namespace rtlb {

struct SvgOptions {
  int width = 900;        // drawing width in px (plus label gutter)
  int lane_height = 26;   // per-lane height in px
  bool show_deadlines = true;
};

/// Shared-model schedule: one lane per (processor type, unit).
std::string render_svg_shared(const Application& app, const Schedule& schedule,
                              const Capacities& caps, const SvgOptions& options = {});

/// Dedicated-model schedule: one lane per node instance.
std::string render_svg_dedicated(const Application& app, const Schedule& schedule,
                                 const DedicatedPlatform& platform,
                                 const DedicatedConfig& config, const SvgOptions& options = {});

}  // namespace rtlb
